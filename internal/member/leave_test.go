package member

import (
	"testing"
)

// TestMemberLeaveBroadcastsDeparture: Leave marks the node dead at its
// current incarnation and pushes sync packets carrying the record, so a peer
// that receives one converges on the departure without a suspicion timeout.
func TestMemberLeaveBroadcastsDeparture(t *testing.T) {
	a := New(0, nil, testConfig(4))
	b := New(1, []int{0}, testConfig(4))
	// Introduce them: b's join sync teaches a about b and vice versa.
	for _, env := range b.Tick(0) {
		if env.To == 0 {
			for _, reply := range a.Receive(env.Pkt, 0) {
				if reply.To == 1 {
					b.Receive(reply.Pkt, 0)
				}
			}
		}
	}
	if st, _, known := a.StateOf(1); !known || st != Alive {
		t.Fatalf("bootstrap failed: a's view of b = (%v, known=%v)", st, known)
	}

	out := a.Leave(10)
	if len(out) == 0 {
		t.Fatal("Leave returned no departure packets")
	}
	if !a.Left() {
		t.Fatal("Left() = false after Leave")
	}
	if st, _, _ := a.StateOf(0); st != Dead {
		t.Fatalf("self view after Leave = %v, want Dead", st)
	}
	for _, env := range out {
		if env.Pkt.Kind != PktSync {
			t.Fatalf("departure packet kind = %v, want PktSync", env.Pkt.Kind)
		}
		if env.To == 1 {
			b.Receive(env.Pkt, 10)
		}
	}
	if st, _, known := b.StateOf(0); !known || st != Dead {
		t.Fatalf("peer's view of leaver = (%v, known=%v), want Dead", st, known)
	}

	// Idempotent: the second Leave is a no-op.
	if again := a.Leave(11); again != nil {
		t.Fatalf("second Leave returned %d packets, want nil", len(again))
	}
}

// TestMemberLeftNodeIsInert: after Leave the detector neither probes nor
// answers, and it never refutes the dead record it just published.
func TestMemberLeftNodeIsInert(t *testing.T) {
	nd := New(2, []int{0, 1}, testConfig(4))
	nd.Receive(Packet{Kind: PktSync, From: 0, Origin: 0,
		Updates: []Update{{Node: 0, St: Alive, Inc: 0}, {Node: 1, St: Alive, Inc: 0}}}, 0)
	nd.Leave(1)

	for now := 2; now < 50; now++ {
		if out := nd.Tick(now); len(out) != 0 {
			t.Fatalf("Tick(%d) after Leave sent %d packets, want 0", now, len(out))
		}
	}
	if out := nd.Receive(Packet{Kind: PktPing, From: 0, Origin: 0, Subject: 2, Seq: 7}, 50); len(out) != 0 {
		t.Fatalf("left node answered a ping with %d packets, want 0", len(out))
	}
	// Hearing its own dead record must NOT trigger an incarnation refutation.
	nd.Receive(Packet{Kind: PktSync, From: 0, Origin: 0,
		Updates: []Update{{Node: 2, St: Dead, Inc: 0}}}, 51)
	if inc := nd.Incarnation(); inc != 0 {
		t.Fatalf("left node refuted its own departure: incarnation = %d, want 0", inc)
	}
	if st, _, _ := nd.StateOf(2); st != Dead {
		t.Fatalf("left node's self view = %v, want Dead", st)
	}
}

// TestMemberOnChangeHook: every local view transition fires the hook, in
// order, including transitions applied from received deltas.
func TestMemberOnChangeHook(t *testing.T) {
	type change struct {
		v   int
		st  State
		inc uint32
	}
	var got []change
	cfg := testConfig(8)
	cfg.OnChange = func(v int, st State, inc uint32) {
		got = append(got, change{v, st, inc})
	}
	nd := New(0, nil, cfg)

	nd.Receive(Packet{Kind: PktSyncAck, From: 3,
		Updates: []Update{{Node: 5, St: Alive, Inc: 0}}}, 1)
	nd.Receive(Packet{Kind: PktSyncAck, From: 3,
		Updates: []Update{{Node: 5, St: Suspect, Inc: 0}}}, 2)
	nd.Receive(Packet{Kind: PktSyncAck, From: 3,
		Updates: []Update{{Node: 5, St: Dead, Inc: 0}}}, 3)

	want := []change{
		{3, Alive, 0}, // sender learned alive
		{5, Alive, 0},
		{5, Suspect, 0},
		{5, Dead, 0},
	}
	if len(got) != len(want) {
		t.Fatalf("OnChange fired %d times, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("OnChange[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}
