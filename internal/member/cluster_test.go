package member

import (
	"testing"

	"gossip/internal/rng"
)

// TestMemberSingleSeedConvergence is the join half of the PR's acceptance
// criterion: 64 nodes bootstrapped from the single seed peer 0 converge to a
// full membership view, deterministically.
func TestMemberSingleSeedConvergence(t *testing.T) {
	c := NewCluster(64, Config{Seed: 1, Record: true}, nil)
	budget := 4 * c.Config().SyncInterval
	took := c.RunUntil(budget, c.Converged)
	if took < 0 {
		t.Fatalf("64-node single-seed cluster not converged after %d ticks", budget)
	}
	t.Logf("converged in %d ticks (budget %d)", took, budget)
	for v := 0; v < 64; v++ {
		alive, suspect, dead := c.Node(v).Counts()
		if alive != 64 || suspect != 0 || dead != 0 {
			t.Fatalf("node %d counts = (%d alive, %d suspect, %d dead), want (64, 0, 0)",
				v, alive, suspect, dead)
		}
	}
}

// TestMemberCrashDetectionAndReadmission is the detect/recover half of the
// acceptance criterion: an injected crash is detected cluster-wide within the
// configured suspicion bound, and the node is re-admitted on restart.
func TestMemberCrashDetectionAndReadmission(t *testing.T) {
	const n, victim = 64, 17
	c := NewCluster(n, Config{Seed: 1, Record: true}, nil)
	if c.RunUntil(4*c.Config().SyncInterval, c.Converged) < 0 {
		t.Fatal("cluster never converged before the crash")
	}

	crashTick := c.Now()
	c.Crash(victim)
	bound := c.Config().DetectionBound(n)
	took := c.RunUntil(bound, func() bool { return c.AllBelieve(victim, Dead) })
	if took < 0 {
		t.Fatalf("crash of node %d not detected cluster-wide within DetectionBound=%d ticks",
			victim, bound)
	}
	t.Logf("cluster-wide detection in %d ticks (bound %d)", took, bound)

	lats := c.DetectionTicks(victim, crashTick)
	if len(lats) != n-1 {
		t.Fatalf("detection latencies from %d observers, want %d", len(lats), n-1)
	}
	for _, l := range lats {
		if l > bound {
			t.Fatalf("observer detection latency %d exceeds bound %d", l, bound)
		}
	}

	// Restart as a fresh process (incarnation zero) from the same single
	// seed: the refutation rule must re-admit it everywhere.
	c.Restart(victim, []int{0})
	budget := 4 * c.Config().SyncInterval
	took = c.RunUntil(budget, func() bool {
		return c.Converged() && c.AllBelieve(victim, Alive)
	})
	if took < 0 {
		t.Fatalf("restarted node %d not re-admitted within %d ticks", victim, budget)
	}
	t.Logf("re-admitted in %d ticks", took)
	if _, inc, _ := c.Node(0).StateOf(victim); inc == 0 {
		t.Fatal("re-admission did not raise the victim's incarnation past the dead record")
	}
}

// TestMemberPartitionFalsePositiveRefuted cuts one node off for less than the
// suspicion timeout: the cluster may suspect it, but after the partition
// heals the suspicion must be refuted — no dead declaration, ever.
func TestMemberPartitionFalsePositiveRefuted(t *testing.T) {
	const n, victim = 16, 5
	c := NewCluster(n, Config{Seed: 3, Record: true}, nil)
	if c.RunUntil(4*c.Config().SyncInterval, c.Converged) < 0 {
		t.Fatal("cluster never converged before the partition")
	}

	// Partition for half the suspicion timeout: long enough that probes of
	// the victim fail, short enough that no suspicion clock can expire.
	start := c.Now() + 1
	end := start + c.Config().SuspicionTicks()/2
	c.Drop = func(from, to, tick int) bool {
		return tick >= start && tick < end && (from == victim || to == victim)
	}
	c.Run(end - c.Now())
	suspected := false
	for v := 0; v < n; v++ {
		if v == victim {
			continue
		}
		if st, _, _ := c.Node(v).StateOf(victim); st == Suspect {
			suspected = true
		}
	}
	if !suspected {
		t.Fatal("partition produced no suspicion; the test exercises nothing (pick a longer window)")
	}

	// Heal and let refutation run: everyone back to alive, incarnation > 0.
	c.Drop = nil
	budget := c.Config().SuspicionTicks() + 4*c.Config().SyncInterval
	if c.RunUntil(budget, func() bool { return c.AllBelieve(victim, Alive) }) < 0 {
		t.Fatalf("suspicion not refuted within %d ticks of the heal", budget)
	}
	if c.Node(victim).Incarnation() == 0 {
		t.Fatal("victim never refuted (incarnation still 0) — suspicion must have timed out instead")
	}
	// (a) of the chaos satellite: no false-positive *dead* declaration.
	for v := 0; v < n; v++ {
		if v == victim {
			continue
		}
		for _, e := range c.Node(v).Events() {
			if e.Node == victim && e.St == Dead {
				t.Fatalf("node %d falsely declared %d dead at t=%d", v, victim, e.Tick)
			}
		}
	}
}

// TestMemberDetectionUnderDrops is (b) of the chaos satellite: with seeded
// random packet loss, a real crash is still detected within the suspicion
// bound.
func TestMemberDetectionUnderDrops(t *testing.T) {
	const n, victim, dropPct = 32, 9, 10
	c := NewCluster(n, Config{Seed: 5, Record: true}, nil)
	// Seeded PRF loss: every (from, to, tick) coin is deterministic.
	c.Drop = func(from, to, tick int) bool {
		return rng.Coin(float64(dropPct)/100, 77, uint64(from), uint64(to), uint64(tick))
	}
	// Under sustained loss transient suspicions come and go, so full
	// convergence (every view Alive at one instant) is too strict a goal;
	// require instead that everyone knows everyone with no dead records.
	known := func() bool {
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				st, _, ok := c.Node(u).StateOf(v)
				if !ok || st == Dead {
					return false
				}
			}
		}
		return true
	}
	if c.RunUntil(6*c.Config().SyncInterval, known) < 0 {
		t.Fatal("cluster never reached full mutual knowledge under drops")
	}
	crashTick := c.Now()
	c.Crash(victim)
	bound := c.Config().DetectionBound(n)
	took := c.RunUntil(bound, func() bool { return c.AllBelieve(victim, Dead) })
	if took < 0 {
		t.Fatalf("crash not detected within DetectionBound=%d under %d%% loss", bound, dropPct)
	}
	for _, l := range c.DetectionTicks(victim, crashTick) {
		if l > bound {
			t.Fatalf("detection latency %d exceeds bound %d under loss", l, bound)
		}
	}
	t.Logf("detection under %d%% loss: %d ticks (bound %d)", dropPct, took, bound)
}

// TestMemberDeterministicEventLog runs the same seeded scenario — join,
// chaos drops, a crash, a restart — twice and demands byte-identical
// cluster-wide event logs.
func TestMemberDeterministicEventLog(t *testing.T) {
	scenario := func() string {
		c := NewCluster(24, Config{Seed: 11, Record: true}, nil)
		c.Latency = func(u, v int) int { return 1 + (u+v)%3 }
		c.Drop = func(from, to, tick int) bool {
			return rng.Coin(0.05, 13, uint64(from), uint64(to), uint64(tick))
		}
		c.Run(100)
		c.Crash(7)
		c.Run(c.Config().DetectionBound(24))
		c.Restart(7, []int{0})
		c.Run(100)
		return c.EventLog()
	}
	a, b := scenario(), scenario()
	if a != b {
		t.Fatalf("same seed produced different event logs:\n--- run 1 ---\n%s--- run 2 ---\n%s", a, b)
	}
	if len(a) == 0 {
		t.Fatal("scenario produced an empty event log")
	}
	// A different seed must not (for this scenario) replay the same schedule —
	// guards against the log accidentally ignoring the rng entirely.
	c2 := NewCluster(24, Config{Seed: 12, Record: true}, nil)
	c2.Run(100)
	c3 := NewCluster(24, Config{Seed: 11, Record: true}, nil)
	c3.Run(100)
	if c2.EventLog() == c3.EventLog() {
		t.Log("note: different seeds produced identical logs (harmless but suspicious)")
	}
}

// TestChurnSustainedJoinLeave drives a sustained crash/restart schedule — the
// churn-experiment shape — and asserts the membership layer tracks it: every
// downed node is eventually declared dead, every restart re-admitted, and the
// final view converges.
func TestChurnSustainedJoinLeave(t *testing.T) {
	const n = 32
	c := NewCluster(n, Config{Seed: 21, Record: true}, nil)
	if c.RunUntil(4*c.Config().SyncInterval, c.Converged) < 0 {
		t.Fatal("initial convergence failed")
	}
	bound := c.Config().DetectionBound(n)
	r := rng.New(99)
	for round := 0; round < 4; round++ {
		victim := 1 + r.Intn(n-1) // keep the seed node 0 up
		c.Crash(victim)
		if c.RunUntil(bound, func() bool { return c.AllBelieve(victim, Dead) }) < 0 {
			t.Fatalf("round %d: crash of %d undetected within %d ticks", round, victim, bound)
		}
		c.Restart(victim, []int{0})
		budget := 4 * c.Config().SyncInterval
		if c.RunUntil(budget, func() bool { return c.AllBelieve(victim, Alive) }) < 0 {
			t.Fatalf("round %d: restart of %d not re-admitted within %d ticks", round, victim, budget)
		}
	}
	if c.RunUntil(4*c.Config().SyncInterval, c.Converged) < 0 {
		t.Fatal("cluster not converged after the churn schedule")
	}
}

// TestMemberClusterLatencyClamp checks the driver clamps sub-tick latencies
// instead of delivering into the past.
func TestMemberClusterLatencyClamp(t *testing.T) {
	c := NewCluster(4, Config{Seed: 2, Record: true}, nil)
	c.Latency = func(u, v int) int { return -5 }
	c.Run(64)
	if !c.Converged() {
		t.Fatal("cluster with clamped latencies failed to converge")
	}
	if c.Sent == 0 || c.Delivered == 0 {
		t.Fatalf("counters not tracking traffic: sent=%d delivered=%d", c.Sent, c.Delivered)
	}
}
