package member

import (
	"fmt"
	"strings"
)

// Cluster is a deterministic lockstep driver for a set of membership nodes:
// the membership analogue of the round simulator. Packets sent at tick t
// over a link of latency ℓ arrive at t+ℓ; nodes tick in ID order; packet
// deliveries replay in insertion order — so a fixed (config, schedule)
// yields byte-identical event logs on every run. Tests, the churn
// experiments, and the membership benchmarks all drive it; the live runtime
// runs the very same Node state machines over wall-clock transports.
type Cluster struct {
	cfg   Config
	nodes []*Node // nil while down (crashed, left, or not yet joined)
	now   int
	cal   map[int][]delivery

	// Latency returns the one-way delay in ticks for a packet from u to v
	// (nil = 1 tick). Values below 1 are clamped to 1.
	Latency func(u, v int) int
	// Drop, when non-nil, decides per packet whether the link eats it —
	// the hook the chaos tests use for seeded loss and partitions.
	Drop func(from, to, tick int) bool

	// Sent counts packets handed to the network (including dropped ones);
	// Delivered counts packets that reached a running node.
	Sent, Delivered int
}

type delivery struct {
	from, to int
	pkt      Packet
}

// NewCluster builds an n-node cluster where node v starts from the seed
// peer list seedsOf(v) (nil seedsOf = everyone bootstraps knowing only node
// 0, except node 0 itself which knows nobody — the single-seed join
// topology). cfg.N is forced to n.
func NewCluster(n int, cfg Config, seedsOf func(v int) []int) *Cluster {
	cfg.N = n
	cfg = cfg.Defaulted()
	if seedsOf == nil {
		seedsOf = func(v int) []int {
			if v == 0 {
				return nil
			}
			return []int{0}
		}
	}
	c := &Cluster{cfg: cfg, nodes: make([]*Node, n), cal: make(map[int][]delivery)}
	for v := 0; v < n; v++ {
		c.nodes[v] = New(v, seedsOf(v), cfg)
	}
	return c
}

// Config returns the cluster's (defaulted) membership config.
func (c *Cluster) Config() Config { return c.cfg }

// Now returns the current tick.
func (c *Cluster) Now() int { return c.now }

// Node returns node v's state machine, or nil while v is down.
func (c *Cluster) Node(v int) *Node { return c.nodes[v] }

// Up reports whether node v is currently running.
func (c *Cluster) Up(v int) bool { return c.nodes[v] != nil }

// Crash fail-stops node v: it stops ticking and every packet addressed to
// it is dropped on arrival. Its state is lost.
func (c *Cluster) Crash(v int) { c.nodes[v] = nil }

// Restart brings node v back as a freshly started process: empty table,
// incarnation zero, bootstrapped from the given seeds. The refutation rule
// re-admits it against any dead record the cluster still holds.
func (c *Cluster) Restart(v int, seeds []int) { c.nodes[v] = New(v, seeds, c.cfg) }

// send schedules the envelopes from node u, applying Drop and Latency.
func (c *Cluster) send(u int, outs []Envelope) {
	for _, env := range outs {
		c.Sent++
		if c.Drop != nil && c.Drop(u, env.To, c.now) {
			continue
		}
		lat := 1
		if c.Latency != nil {
			if l := c.Latency(u, env.To); l > 1 {
				lat = l
			}
		}
		at := c.now + lat
		c.cal[at] = append(c.cal[at], delivery{from: u, to: env.To, pkt: env.Pkt})
	}
}

// Step advances the cluster one tick: deliver everything due, then tick
// every running node in ID order.
func (c *Cluster) Step() {
	c.now++
	due := c.cal[c.now]
	delete(c.cal, c.now)
	for _, d := range due {
		nd := c.nodes[d.to]
		if nd == nil {
			continue // down: the network eats the packet
		}
		c.Delivered++
		c.send(d.to, nd.Receive(d.pkt, c.now))
	}
	for v, nd := range c.nodes {
		if nd != nil {
			c.send(v, nd.Tick(c.now))
		}
	}
}

// Run advances the cluster by ticks.
func (c *Cluster) Run(ticks int) {
	for i := 0; i < ticks; i++ {
		c.Step()
	}
}

// RunUntil steps until pred holds (returning the ticks consumed) or maxTicks
// elapse (returning -1).
func (c *Cluster) RunUntil(maxTicks int, pred func() bool) int {
	for i := 1; i <= maxTicks; i++ {
		c.Step()
		if pred() {
			return i
		}
	}
	return -1
}

// Converged reports whether every running node knows every running node as
// alive (the full-membership-view goal of a join).
func (c *Cluster) Converged() bool {
	for _, nd := range c.nodes {
		if nd == nil {
			continue
		}
		for v, other := range c.nodes {
			if other == nil {
				continue
			}
			st, _, known := nd.StateOf(v)
			if !known || st != Alive {
				return false
			}
		}
	}
	return true
}

// AllBelieve reports whether every running node's view of v is st.
func (c *Cluster) AllBelieve(v int, st State) bool {
	for _, nd := range c.nodes {
		if nd == nil {
			continue
		}
		got, _, known := nd.StateOf(v)
		if !known || got != st {
			return false
		}
	}
	return true
}

// DetectionTicks returns, per running observer, the ticks it took to declare
// v dead after crashTick, read from the observers' event logs (requires
// Config.Record). Observers that never declared v dead are omitted.
func (c *Cluster) DetectionTicks(v, crashTick int) []int {
	var out []int
	for _, nd := range c.nodes {
		if nd == nil || nd.ID() == v {
			continue
		}
		for _, e := range nd.Events() {
			if e.Node == v && e.St == Dead && e.Tick >= crashTick {
				out = append(out, e.Tick-crashTick)
				break
			}
		}
	}
	return out
}

// EventLog renders every node's event log, nodes in ID order under stable
// headers — the cluster-wide byte-comparable determinism surface. Downed
// nodes render an empty section.
func (c *Cluster) EventLog() string {
	var b strings.Builder
	for v, nd := range c.nodes {
		fmt.Fprintf(&b, "== node %d ==\n", v)
		if nd != nil {
			b.WriteString(nd.EventLog())
		}
	}
	return b.String()
}
