package member

import (
	"reflect"
	"testing"

	"gossip/internal/rng"
)

// testConfig is a small, fast config with recording on.
func testConfig(n int) Config {
	return Config{Seed: 42, N: n, Record: true}.Defaulted()
}

func TestMemberConfigDefaults(t *testing.T) {
	c := Config{N: 16}.Defaulted()
	if c.ProbeInterval != DefaultProbeInterval {
		t.Fatalf("ProbeInterval = %d, want %d", c.ProbeInterval, DefaultProbeInterval)
	}
	if c.ProbeTimeout != DefaultProbeInterval/2 {
		t.Fatalf("ProbeTimeout = %d, want %d", c.ProbeTimeout, DefaultProbeInterval/2)
	}
	if c.SuspicionMult != DefaultSuspicionMult || c.IndirectK != DefaultIndirectK ||
		c.MaxPiggyback != DefaultMaxPiggyback || c.RetransmitMult != DefaultRetransmitMult {
		t.Fatalf("unexpected defaults: %+v", c)
	}
	if c.SyncInterval != 8*c.ProbeInterval {
		t.Fatalf("SyncInterval = %d, want %d", c.SyncInterval, 8*c.ProbeInterval)
	}
	// ⌈log₂ 16⌉ = 4.
	if got, want := c.SuspicionTicks(), c.SuspicionMult*c.ProbeInterval*4; got != want {
		t.Fatalf("SuspicionTicks = %d, want %d", got, want)
	}
	if b := c.DetectionBound(16); b <= c.SuspicionTicks() {
		t.Fatalf("DetectionBound(16) = %d, want > SuspicionTicks %d", b, c.SuspicionTicks())
	}
	// Negative SyncInterval survives Defaulted (it means "disabled").
	if c2 := (Config{N: 4, SyncInterval: -1}).Defaulted(); c2.SyncInterval != -1 {
		t.Fatalf("SyncInterval = %d, want -1 preserved", c2.SyncInterval)
	}
}

// TestMemberMergeRules exercises the SWIM precedence table directly.
func TestMemberMergeRules(t *testing.T) {
	cases := []struct {
		name    string
		have    Update // pre-existing view of node 1 (applied first)
		up      Update // incoming delta
		applies bool
	}{
		{"alive-needs-higher-inc", Update{1, Alive, 2}, Update{1, Alive, 2}, false},
		{"alive-overrides-older-alive", Update{1, Alive, 1}, Update{1, Alive, 2}, true},
		{"alive-overrides-suspect", Update{1, Suspect, 1}, Update{1, Alive, 2}, true},
		{"alive-not-same-inc-suspect", Update{1, Suspect, 2}, Update{1, Alive, 2}, false},
		{"alive-overrides-dead", Update{1, Dead, 1}, Update{1, Alive, 2}, true},
		{"alive-not-dead-same-inc", Update{1, Dead, 2}, Update{1, Alive, 2}, false},
		{"suspect-beats-alive-same-inc", Update{1, Alive, 2}, Update{1, Suspect, 2}, true},
		{"suspect-not-older-alive", Update{1, Alive, 2}, Update{1, Suspect, 1}, false},
		{"suspect-needs-higher-than-suspect", Update{1, Suspect, 2}, Update{1, Suspect, 2}, false},
		{"suspect-beats-older-suspect", Update{1, Suspect, 1}, Update{1, Suspect, 2}, true},
		{"suspect-never-beats-dead", Update{1, Dead, 0}, Update{1, Suspect, 9}, false},
		{"dead-beats-alive-same-inc", Update{1, Alive, 2}, Update{1, Dead, 2}, true},
		{"dead-beats-suspect-same-inc", Update{1, Suspect, 2}, Update{1, Dead, 2}, true},
		{"dead-not-older-inc", Update{1, Alive, 2}, Update{1, Dead, 1}, false},
		{"dead-idempotent", Update{1, Dead, 2}, Update{1, Dead, 5}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			nd := New(0, nil, testConfig(4))
			nd.applyLocked(tc.have)
			if got := nd.applyLocked(tc.up); got != tc.applies {
				t.Fatalf("apply(%v) after %v = %v, want %v", tc.up, tc.have, got, tc.applies)
			}
			st, inc, known := nd.StateOf(1)
			want := tc.have
			if tc.applies {
				want = tc.up
			}
			if !known || st != want.St || inc != want.Inc {
				t.Fatalf("view of 1 = (%v, %d, %v), want (%v, %d, true)",
					st, inc, known, want.St, want.Inc)
			}
		})
	}
}

func TestMemberUnknownNodeAnyStateApplies(t *testing.T) {
	for _, st := range []State{Alive, Suspect, Dead} {
		nd := New(0, nil, testConfig(4))
		if !nd.applyLocked(Update{Node: 2, St: st, Inc: 0}) {
			t.Fatalf("first record (%v) about unknown node should apply", st)
		}
	}
	// Out-of-range IDs are ignored, not a panic.
	nd := New(0, nil, testConfig(4))
	if nd.applyLocked(Update{Node: 99, St: Alive, Inc: 0}) || nd.applyLocked(Update{Node: -1}) {
		t.Fatal("out-of-range node IDs must not apply")
	}
}

// TestMemberRefutation checks the incarnation-bump self-defense: hearing
// yourself suspected (or declared dead) at your current incarnation yields a
// fresher alive record, never an accepted suspicion.
func TestMemberRefutation(t *testing.T) {
	nd := New(3, nil, testConfig(8))
	if nd.Incarnation() != 0 {
		t.Fatalf("fresh node incarnation = %d, want 0", nd.Incarnation())
	}
	nd.Receive(Packet{Kind: PktSyncAck, From: 1, Updates: []Update{{Node: 3, St: Suspect, Inc: 0}}}, 5)
	if inc := nd.Incarnation(); inc != 1 {
		t.Fatalf("after suspect{inc 0}: incarnation = %d, want 1", inc)
	}
	st, inc, _ := nd.StateOf(3)
	if st != Alive || inc != 1 {
		t.Fatalf("self view = (%v, %d), want (alive, 1)", st, inc)
	}
	// A stale suspicion (lower incarnation) is ignored outright.
	nd.Receive(Packet{Kind: PktSyncAck, From: 1, Updates: []Update{{Node: 3, St: Suspect, Inc: 0}}}, 6)
	if inc := nd.Incarnation(); inc != 1 {
		t.Fatalf("stale suspicion bumped incarnation to %d", inc)
	}
	// A dead record at (or above) the current incarnation jumps past it.
	nd.Receive(Packet{Kind: PktSyncAck, From: 1, Updates: []Update{{Node: 3, St: Dead, Inc: 7}}}, 7)
	if inc := nd.Incarnation(); inc != 8 {
		t.Fatalf("after dead{inc 7}: incarnation = %d, want 8", inc)
	}
	// The refutation must be queued for dissemination.
	found := false
	for _, up := range nd.piggybackLocked() {
		if up.Node == 3 && up.St == Alive && up.Inc == 8 {
			found = true
		}
	}
	if !found {
		t.Fatal("refutation alive{3, inc 8} not queued for piggyback")
	}
}

func TestMemberLearnsSenderAndAcks(t *testing.T) {
	nd := New(0, nil, testConfig(8))
	if _, _, known := nd.StateOf(5); known {
		t.Fatal("node 5 known before any contact")
	}
	out := nd.Receive(Packet{Kind: PktPing, From: 5, Origin: 5, Subject: 0, Seq: 9}, 3)
	if st, _, known := nd.StateOf(5); !known || st != Alive {
		t.Fatalf("sender not learned alive: (%v, known=%v)", st, known)
	}
	if len(out) != 1 || out[0].To != 5 || out[0].Pkt.Kind != PktAck ||
		out[0].Pkt.Seq != 9 || out[0].Pkt.Subject != 0 {
		t.Fatalf("ping answer = %+v, want ack to 5 seq 9", out)
	}
}

func TestMemberPingReqRelay(t *testing.T) {
	nd := New(2, []int{0, 1}, testConfig(8))
	out := nd.Receive(Packet{Kind: PktPingReq, From: 0, Origin: 0, Subject: 7, Seq: 4}, 3)
	if len(out) != 1 || out[0].To != 7 {
		t.Fatalf("relay output = %+v, want one ping to 7", out)
	}
	p := out[0].Pkt
	if p.Kind != PktPing || p.From != 2 || p.Origin != 0 || p.Subject != 7 || p.Seq != 4 {
		t.Fatalf("relayed ping = %+v, want kind=ping from=2 origin=0 subject=7 seq=4", p)
	}
	// The subject's eventual ack must satisfy the origin's outstanding probe:
	// simulate it end to end.
	target := New(7, nil, testConfig(8))
	acks := target.Receive(p, 4)
	if len(acks) != 1 || acks[0].To != 0 {
		t.Fatalf("relayed ping's ack = %+v, want ack to origin 0", acks)
	}
	origin := New(0, []int{7}, testConfig(8))
	origin.mu.Lock()
	origin.target, origin.targetSeq = 7, 4
	origin.mu.Unlock()
	origin.Receive(acks[0].Pkt, 5)
	origin.mu.Lock()
	acked := origin.acked
	origin.mu.Unlock()
	if !acked {
		t.Fatal("origin did not accept the relayed ack")
	}
}

func TestMemberProbeSuspectsUnresponsive(t *testing.T) {
	cfg := testConfig(4)
	nd := New(0, []int{1}, cfg)
	var pinged, pingReqed bool
	for now := 1; now <= 2*cfg.ProbeInterval; now++ {
		for _, env := range nd.Tick(now) {
			switch env.Pkt.Kind {
			case PktPing:
				pinged = true
			case PktPingReq:
				pingReqed = true
			}
		}
	}
	if !pinged {
		t.Fatal("node never pinged its only peer")
	}
	// With no other members there are no relays, so no ping-req can fire.
	if pingReqed {
		t.Fatal("ping-req fired with no relay candidates")
	}
	st, _, _ := nd.StateOf(1)
	if st != Suspect {
		t.Fatalf("unresponsive peer = %v, want suspect", st)
	}
	// Let the suspicion clock expire: the peer is declared dead.
	deadline := 2*cfg.ProbeInterval + cfg.SuspicionTicks() + cfg.ProbeInterval
	for now := 2*cfg.ProbeInterval + 1; now <= deadline; now++ {
		nd.Tick(now)
	}
	if st, _, _ := nd.StateOf(1); st != Dead {
		t.Fatalf("suspect after timeout = %v, want dead", st)
	}
}

func TestMemberPiggybackBudget(t *testing.T) {
	cfg := testConfig(4)
	cfg.MaxPiggyback = 2
	nd := New(0, nil, cfg)
	nd.mu.Lock()
	nd.queue = nil // drop the join announcement; isolate the budget math
	for v := 1; v < 4; v++ {
		nd.enqueueLocked(Update{Node: v, St: Alive, Inc: 1})
	}
	nd.mu.Unlock()

	counts := make(map[int]int)
	for i := 0; i < 100; i++ {
		nd.mu.Lock()
		ups := nd.piggybackLocked()
		nd.mu.Unlock()
		if len(ups) > cfg.MaxPiggyback {
			t.Fatalf("piggyback batch of %d exceeds MaxPiggyback %d", len(ups), cfg.MaxPiggyback)
		}
		if len(ups) == 0 {
			break
		}
		for _, up := range ups {
			counts[up.Node]++
		}
	}
	// memberCount is 2 (floor), so each delta gets RetransmitMult·⌈log₂2⌉
	// rebroadcasts.
	want := cfg.RetransmitMult * 1
	for v := 1; v < 4; v++ {
		if counts[v] != want {
			t.Fatalf("node %d delta piggybacked %d times, want %d", v, counts[v], want)
		}
	}
}

func TestMemberEventLogRecordsTransitions(t *testing.T) {
	nd := New(0, nil, testConfig(4))
	nd.Receive(Packet{Kind: PktSyncAck, From: 1, Updates: []Update{
		{Node: 2, St: Alive, Inc: 0},
		{Node: 2, St: Suspect, Inc: 0},
	}}, 7)
	events := nd.Events()
	// learnSender(1), alive(2), suspect(2).
	want := []Event{
		{Tick: 7, Node: 1, St: Alive, Inc: 0},
		{Tick: 7, Node: 2, St: Alive, Inc: 0},
		{Tick: 7, Node: 2, St: Suspect, Inc: 0},
	}
	if !reflect.DeepEqual(events, want) {
		t.Fatalf("events = %v, want %v", events, want)
	}
	log := nd.EventLog()
	wantLog := "t=7 node=1 alive inc=0\nt=7 node=2 alive inc=0\nt=7 node=2 suspect inc=0\n"
	if log != wantLog {
		t.Fatalf("event log = %q, want %q", log, wantLog)
	}
}

func TestMemberPacketRoundTrip(t *testing.T) {
	r := rng.New(7)
	for i := 0; i < 200; i++ {
		p := Packet{
			Kind:    PacketKind(1 + r.Intn(5)),
			From:    r.Intn(1 << 20),
			Origin:  r.Intn(1 << 20),
			Subject: r.Intn(1 << 20),
			Seq:     uint32(r.Uint64()),
		}
		for j := r.Intn(8); j > 0; j-- {
			p.Updates = append(p.Updates, Update{
				Node: r.Intn(1 << 20),
				St:   State(r.Intn(3)),
				Inc:  uint32(r.Uint64()),
			})
		}
		enc := p.AppendBinary(nil)
		if p.SizeBytes() != len(enc) {
			t.Fatalf("SizeBytes = %d, encoded length = %d", p.SizeBytes(), len(enc))
		}
		got, err := DecodePacket(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(got, p) {
			t.Fatalf("round trip: got %+v, want %+v", got, p)
		}
	}
}

func TestMemberPacketMalformed(t *testing.T) {
	valid := Packet{Kind: PktPing, From: 1, Origin: 1, Subject: 2, Seq: 3,
		Updates: []Update{{Node: 2, St: Suspect, Inc: 4}}}.AppendBinary(nil)
	if _, err := DecodePacket(valid); err != nil {
		t.Fatalf("control: valid packet rejected: %v", err)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"zero-kind", []byte{0}},
		{"bad-kind", []byte{99}},
		{"truncated-header", valid[:2]},
		{"truncated-delta", valid[:len(valid)-1]},
		{"trailing-bytes", append(append([]byte(nil), valid...), 0)},
		{"bad-state", func() []byte {
			p := Packet{Kind: PktAck, Updates: []Update{{Node: 1, St: 9, Inc: 0}}}
			return p.AppendBinary(nil)
		}()},
		{"huge-count", func() []byte {
			// Header then a delta count far past maxPacketUpdates.
			b := Packet{Kind: PktAck}.AppendBinary(nil)
			b = b[:len(b)-1] // drop the zero count
			return append(b, 0xff, 0xff, 0xff, 0xff, 0x7f)
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodePacket(tc.data); err == nil {
				t.Fatalf("decode(%x) succeeded, want error", tc.data)
			}
		})
	}
}

func TestMemberStateStrings(t *testing.T) {
	if Alive.String() != "alive" || Suspect.String() != "suspect" || Dead.String() != "dead" {
		t.Fatal("state strings changed; event logs are a compatibility surface")
	}
	for k := PktPing; k <= PktSyncAck; k++ {
		if s := k.String(); s == "" || s[0] == 'P' {
			t.Fatalf("kind %d has no lowercase name: %q", k, s)
		}
	}
}
