package sim

import (
	"testing"

	"gossip/internal/graph"
)

// TestProcStressLockstep drives many coroutine procs with mixed blocking and
// non-blocking operations and verifies global lockstep: every proc observes
// every round exactly once.
func TestProcStressLockstep(t *testing.T) {
	const n = 200
	const rounds = 50
	g := graph.Cycle(n, 2)
	nw := NewNetwork(g, Config{Seed: 9, MaxRounds: 10 * rounds})
	observed := make([][]int, n)
	for u := 0; u < n; u++ {
		u := u
		p := NewProc(func(p *Proc) {
			for p.Round() < rounds {
				observed[u] = append(observed[u], p.Round())
				switch p.Round() % 3 {
				case 0:
					p.Send(p.Round()%p.Degree(), "ping")
					p.Yield()
				case 1:
					p.Exchange((p.Round()+1)%p.Degree(), "xchg")
				default:
					p.Yield()
				}
			}
		})
		p.HandleRequests(func(p *Proc, req Request) Payload { return "ack" })
		nw.SetHandler(u, p)
	}
	if _, err := nw.Run(nil); err != nil {
		t.Fatalf("run: %v", err)
	}
	for u := 0; u < n; u++ {
		prev := 0
		for _, r := range observed[u] {
			if r <= prev && prev != 0 {
				t.Fatalf("proc %d observed non-increasing rounds: %v", u, observed[u])
			}
			prev = r
		}
		if len(observed[u]) == 0 {
			t.Fatalf("proc %d never ran", u)
		}
	}
}

// TestProcManyBlockingExchanges verifies a long chain of sequential
// exchanges completes with exact timing: k exchanges over latency-ℓ edges
// take exactly k·ℓ rounds.
func TestProcManyBlockingExchanges(t *testing.T) {
	const k, lat = 25, 3
	g := graph.New(2)
	g.MustAddEdge(0, 1, lat)
	nw := NewNetwork(g, Config{Seed: 1, MaxRounds: 10 * k * lat})
	var elapsed int
	p0 := NewProc(func(p *Proc) {
		start := p.Round()
		for i := 0; i < k; i++ {
			p.Exchange(0, i)
		}
		elapsed = p.Round() - start
	})
	p1 := NewProc(func(p *Proc) {})
	p1.HandleRequests(func(p *Proc, req Request) Payload { return req.Payload })
	nw.SetHandler(0, p0)
	nw.SetHandler(1, p1)
	if _, err := nw.Run(nil); err != nil {
		t.Fatalf("run: %v", err)
	}
	if elapsed != k*lat {
		t.Errorf("%d exchanges of latency %d took %d rounds, want %d", k, lat, elapsed, k*lat)
	}
}

// TestManyNetworksSequential guards against cross-run state leaks: repeated
// construction and teardown of networks with procs must behave identically.
func TestManyNetworksSequential(t *testing.T) {
	var first Metrics
	for i := 0; i < 20; i++ {
		g := graph.Clique(10, 1)
		nw := NewNetwork(g, Config{Seed: 3, MaxRounds: 500})
		for u := 0; u < g.N(); u++ {
			p := NewProc(func(p *Proc) {
				for j := 0; j < 5; j++ {
					p.Exchange(p.Rand().Intn(p.Degree()), "x")
				}
			})
			p.HandleRequests(func(p *Proc, req Request) Payload { return "y" })
			nw.SetHandler(u, p)
		}
		res, err := nw.Run(nil)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if i == 0 {
			first = res.Metrics
		} else if res.Metrics != first {
			t.Fatalf("iteration %d metrics %+v differ from first %+v", i, res.Metrics, first)
		}
	}
}
