package sim

import (
	"fmt"
	"testing"

	"gossip/internal/graph"
)

// TestRingGrowsForRaisedLatency raises an edge latency far beyond the
// calendar capacity chosen at construction: schedule must grow the ring and
// remap live events to their absolute rounds, and the round-trip timing must
// stay exact.
func TestRingGrowsForRaisedLatency(t *testing.T) {
	g := graph.New(2)
	id := g.MustAddEdge(0, 1, 1)
	nw := NewNetwork(g, Config{Seed: 1, MaxRounds: 500})
	capBefore := len(nw.ring)
	// Raise the latency after the network sized its ring for maxLatency 1.
	lat := 8 * capBefore
	if err := g.SetLatency(id, lat); err != nil {
		t.Fatal(err)
	}
	a := &echoHandler{initiateAt: 1, edgeIdx: 0, payload: "grow"}
	b := &echoHandler{}
	nw.SetHandler(0, a)
	nw.SetHandler(1, b)
	if _, err := nw.Run(func(nw *Network) bool { return len(a.gotResponses) > 0 }); err != nil {
		t.Fatal(err)
	}
	if len(nw.ring) <= capBefore {
		t.Errorf("ring capacity %d did not grow past %d for latency %d", len(nw.ring), capBefore, lat)
	}
	if want := 1 + (lat+1)/2; b.reqRound[0] != want {
		t.Errorf("request delivered at round %d, want %d", b.reqRound[0], want)
	}
	if want := 1 + lat; a.respRound[0] != want {
		t.Errorf("response delivered at round %d, want %d", a.respRound[0], want)
	}
}

// TestRingGrowthMidRun keeps a long-latency exchange in flight while a
// second initiation forces the ring to grow: the remap must preserve the
// absolute delivery round of the already-scheduled event.
func TestRingGrowthMidRun(t *testing.T) {
	g := graph.New(3)
	slow := g.MustAddEdge(0, 1, 2)
	g.MustAddEdge(0, 2, 1)
	nw := NewNetwork(g, Config{Seed: 1, MaxRounds: 500})
	capBefore := len(nw.ring)
	lat := 4 * capBefore // scheduled once the ring has already seen traffic
	b := &echoHandler{}
	c := &echoHandler{}
	var aResp []Response
	var aRespRound []int
	a := &funcHandler{tick: func(ctx *Context) {
		switch ctx.Round() {
		case 1:
			// Seed the calendar with a short exchange so growth has a live
			// event to remap.
			if _, err := ctx.Initiate(1, "short"); err != nil {
				panic(err)
			}
			// Raise the slow edge under the engine's feet; round 2's
			// initiation outgrows the ring while "short" is in flight.
			if err := g.SetLatency(slow, lat); err != nil {
				panic(err)
			}
		case 2:
			if _, err := ctx.Initiate(0, "long"); err != nil {
				panic(err)
			}
		}
	}}
	aWrap := &respRecorder{inner: a, resp: &aResp, rounds: &aRespRound}
	nw.SetHandler(0, aWrap)
	nw.SetHandler(1, b)
	nw.SetHandler(2, c)
	if _, err := nw.Run(func(nw *Network) bool { return len(aResp) == 2 }); err != nil {
		t.Fatal(err)
	}
	if len(nw.ring) <= capBefore {
		t.Errorf("ring capacity %d did not grow past %d", len(nw.ring), capBefore)
	}
	// The short exchange (latency 1, initiated round 1) must still land at
	// round 2 after the remap; the long one at 2+lat.
	if aRespRound[0] != 2 {
		t.Errorf("short response delivered at round %d, want 2", aRespRound[0])
	}
	if want := 2 + lat; aRespRound[1] != want {
		t.Errorf("long response delivered at round %d, want %d", aRespRound[1], want)
	}
}

// respRecorder wraps a handler to capture responses with their rounds.
type respRecorder struct {
	inner  Handler
	resp   *[]Response
	rounds *[]int
}

func (h *respRecorder) Start(ctx *Context) { h.inner.Start(ctx) }
func (h *respRecorder) Tick(ctx *Context)  { h.inner.Tick(ctx) }
func (h *respRecorder) OnRequest(ctx *Context, req Request) Payload {
	return h.inner.OnRequest(ctx, req)
}
func (h *respRecorder) OnResponse(ctx *Context, resp Response) {
	*h.resp = append(*h.resp, resp)
	*h.rounds = append(*h.rounds, ctx.Round())
	h.inner.OnResponse(ctx, resp)
}
func (h *respRecorder) Done() bool { return h.inner.Done() }

// TestCongestionRequeueOnWrappedSlot drives a hub with MaxResponsesPerRound=1
// on a ring small enough that the +1 requeue lands on a wrapped slot: every
// leaf's exchange must still complete, in FIFO order, one per round.
func TestCongestionRequeueOnWrappedSlot(t *testing.T) {
	leaves := 6
	g := graph.Star(leaves+1, 1) // node 0 = hub; maxLatency 1 → minimal ring
	nw := NewNetwork(g, Config{Seed: 1, MaxRounds: 100, MaxResponsesPerRound: 1})
	if len(nw.ring) != 4 {
		t.Fatalf("ring capacity %d, want the minimum 4 (the test needs wrap-around)", len(nw.ring))
	}
	hub := &echoHandler{}
	nw.SetHandler(0, hub)
	leafRounds := make([][]int, leaves)
	leafResps := make([][]Response, leaves)
	for v := 1; v <= leaves; v++ {
		v := v
		leaf := &funcHandler{tick: func(ctx *Context) {
			if ctx.Round() == 1 {
				if _, err := ctx.Initiate(0, fmt.Sprintf("leaf-%d", v)); err != nil {
					panic(err)
				}
			}
		}}
		nw.SetHandler(v, &respRecorder{inner: leaf, resp: &leafResps[v-1], rounds: &leafRounds[v-1]})
	}
	res, err := nw.Run(func(nw *Network) bool { return nw.Metrics().Responses == leaves })
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v <= leaves; v++ {
		if len(leafRounds[v-1]) != 1 {
			t.Errorf("leaf %d completed %d exchanges, want 1", v, len(leafRounds[v-1]))
		}
	}
	if !res.Completed {
		t.Fatal("run did not complete")
	}
	if nw.Metrics().Responses != leaves {
		t.Errorf("hub answered %d requests, want %d", nw.Metrics().Responses, leaves)
	}
	if got := len(hub.gotRequests); got != leaves {
		t.Errorf("hub saw %d requests, want %d", got, leaves)
	}
	// All requests arrive at round 2; the bound serializes them one per
	// round, so hub service rounds must be exactly 2, 3, ..., leaves+1.
	for i, r := range hub.reqRound {
		if want := 2 + i; r != want {
			t.Errorf("hub served request %d at round %d, want %d", i, r, want)
		}
	}
}

// TestZeroDelayResponseFlushOrder pins the intra-round event order the old
// map-based engine produced: with latency 1 (response delay 0) the response
// is appended to the slot being scanned and must be delivered in the same
// round, after the request, in initiation order.
func TestZeroDelayResponseFlushOrder(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(0, 2, 1)
	g.MustAddEdge(1, 2, 1)
	var rec Recorder
	nw := NewNetwork(g, Config{Seed: 1, MaxRounds: 10, Trace: rec.Tracer()})
	for v := 0; v < 3; v++ {
		v := v
		nw.SetHandler(v, &funcHandler{tick: func(ctx *Context) {
			if ctx.Round() == 1 {
				if _, err := ctx.Initiate(0, v); err != nil {
					panic(err)
				}
			}
		}})
	}
	if _, err := nw.Run(func(nw *Network) bool { return nw.Metrics().Responses == 3 }); err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, ev := range rec.Events {
		got = append(got, fmt.Sprintf("r%d %s %d->%d", ev.Round, ev.Kind, ev.From, ev.To))
	}
	// Round 1: the three initiations in node order. Round 2: the three
	// requests in initiation order; each serve appends its zero-delay
	// response to the end of the slot being scanned, so the responses flush
	// after the last request, again in initiation order.
	want := []string{
		"r1 initiate 0->1",
		"r1 initiate 1->0",
		"r1 initiate 2->0",
		"r2 request 0->1",
		"r2 request 1->0",
		"r2 request 2->0",
		"r2 response 1->0",
		"r2 response 0->1",
		"r2 response 0->2",
	}
	if len(got) != len(want) {
		t.Fatalf("trace length %d, want %d:\n%v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("trace[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestEventPoolReuse checks that delivered events actually return to the free
// list and are reused: after a run far longer than the pool block size, the
// pool must have allocated only a handful of blocks.
func TestEventPoolReuse(t *testing.T) {
	g := graph.New(2)
	g.MustAddEdge(0, 1, 1)
	nw := NewNetwork(g, Config{Seed: 1, MaxRounds: 1000})
	every := &funcHandler{tick: func(ctx *Context) {
		if _, err := ctx.Initiate(0, "x"); err != nil {
			panic(err)
		}
	}}
	nw.SetHandler(0, every)
	nw.SetHandler(1, &echoHandler{})
	if _, err := nw.Run(func(nw *Network) bool { return nw.Round() >= 500 }); err != nil {
		t.Fatal(err)
	}
	// 500 rounds × 2 events each would be 1000 allocations without pooling;
	// with reuse the pool stays within a couple of blocks.
	if free := len(nw.free); free > 2*eventBlockSize {
		t.Errorf("free list holds %d events (> %d): pool is leaking instead of reusing", free, 2*eventBlockSize)
	}
}
