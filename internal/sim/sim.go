// Package sim implements the paper's communication model (Section 1) as a
// deterministic, round-driven network simulator:
//
//   - Nodes communicate over the edges of a latency-weighted graph in
//     synchronous rounds.
//   - In each round a node may initiate at most one exchange: it sends a
//     request to a chosen neighbor and automatically receives a response.
//     Over an edge of latency ℓ the request arrives after ⌈ℓ/2⌉ rounds and
//     the response after the remaining ⌊ℓ/2⌋ rounds, so the round trip takes
//     exactly ℓ rounds, as the model requires.
//   - Communication is non-blocking: a node may initiate a new exchange every
//     round even while earlier exchanges are in flight.
//   - Nodes know the identity of their neighbors and (optionally, Section 5)
//     the latency of adjacent edges; they learn an edge's latency after
//     completing an exchange over it.
//
// Protocols attach to nodes either as state machines (Handler) or as
// sequential coroutines (Proc, see proc.go), which the engine drives in
// lockstep with the round barrier.
package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"gossip/internal/graph"
	"gossip/internal/rng"
)

// Payload is a protocol-defined message body. Payloads must be treated as
// immutable once passed to the engine: the request payload is captured at
// initiation time and delivered ⌈ℓ/2⌉ rounds later unchanged.
type Payload interface{}

// Sizer lets payloads report their size for message accounting.
type Sizer interface{ SizeBytes() int }

// EdgeView is a node's view of one incident edge. Latency is the true edge
// latency when the network is configured with known latencies, and 0
// (unknown) otherwise.
type EdgeView struct {
	To      graph.NodeID
	Index   int // index into the node's neighbor list
	EdgeID  int
	Latency int
}

// Response is delivered to the initiator when an exchange completes.
type Response struct {
	From        graph.NodeID
	EdgeIndex   int
	Payload     Payload
	Latency     int // the true edge latency, learned by completing the exchange
	InitiatedAt int
}

// Request is delivered to the responder when a request arrives.
type Request struct {
	From      graph.NodeID
	EdgeIndex int // index of the edge in the *responder's* neighbor list
	Payload   Payload
}

// Handler is the state-machine protocol interface. The engine calls Start
// once, then every round: first delivery callbacks (OnRequest/OnResponse) for
// arrivals, then Tick. A handler initiates exchanges via Context.Initiate.
type Handler interface {
	Start(ctx *Context)
	Tick(ctx *Context)
	OnRequest(ctx *Context, req Request) Payload
	OnResponse(ctx *Context, resp Response)
	// Done reports local termination; when every handler is done the run
	// stops. Handlers that never terminate locally should return false and
	// rely on the run predicate.
	Done() bool
}

// Config controls a Network.
type Config struct {
	KnownLatencies bool
	Seed           uint64
	MaxRounds      int // 0 means DefaultMaxRounds
	NHint          int // polynomial upper bound on n known to nodes; 0 = exact n
	// FullRTTDelivery delivers the request only at t+ℓ (response still at
	// t+ℓ). This is the "no pipelining" ablation; the default split delivery
	// (⌈ℓ/2⌉ + ⌊ℓ/2⌋) matches the round-trip semantics of the paper while
	// letting information flow one-way in ⌈ℓ/2⌉.
	FullRTTDelivery bool
	// Crashes schedules node crash failures: Crashes[v] = r makes node v
	// fail-stop at the beginning of round r. A crashed node no longer ticks,
	// drops incoming requests without responding (so a blocking exchange
	// with it never completes), and its in-flight initiations are lost. The
	// paper's conclusion notes push-pull is robust to such failures while
	// the spanner-based algorithms are not; this knob is the fault-injection
	// extension that measures it.
	Crashes map[graph.NodeID]int
	// Trace, when non-nil, receives every engine event (initiations,
	// deliveries, crashes) synchronously.
	Trace Tracer
	// MaxResponsesPerRound bounds how many incoming requests a node can
	// answer per round (0 = unlimited, the paper's base model). Excess
	// requests queue and are answered in FIFO order in later rounds, so
	// congestion at a hub stretches effective latencies. This implements the
	// restricted model raised in the paper's conclusion (Daum, Kuhn, Maus:
	// rumor spreading with bounded in-degree).
	MaxResponsesPerRound int
}

// DefaultMaxRounds bounds runs whose predicate never fires.
const DefaultMaxRounds = 2_000_000

// ErrMaxRounds reports that the round budget was exhausted before the
// completion predicate fired.
var ErrMaxRounds = errors.New("sim: max rounds exceeded")

// ErrStalled reports that no node is active and no event is in flight, yet
// the completion predicate has not fired.
var ErrStalled = errors.New("sim: network stalled before completion")

// Metrics aggregates the cost of a run.
type Metrics struct {
	Rounds          int
	Requests        int
	Responses       int
	Bytes           int
	EdgeActivations int
}

// Messages returns the total message count (requests + responses).
func (m Metrics) Messages() int { return m.Requests + m.Responses }

// NodeLoad reports one node's share of the traffic.
type NodeLoad struct {
	Initiated int // exchanges this node initiated
	Answered  int // requests this node answered
}

// Total returns the node's total handled messages.
func (l NodeLoad) Total() int { return l.Initiated + l.Answered }

type eventKind uint8

const (
	evRequest eventKind = iota + 1
	evResponse
)

type event struct {
	kind        eventKind
	from, to    graph.NodeID
	edgeID      int
	toIdx       int32 // index of the edge in the destination's neighbor list
	backIdx     int32 // index of the edge at the initiator (for the response hop)
	payload     Payload
	initiatedAt int
	latency     int
	exchangeID  uint64
}

type nodeState struct {
	id        graph.NodeID
	handler   Handler
	env       nodeEnv
	ctx       Context
	initiated bool // initiated an exchange this round
	served    int  // requests answered this round (MaxResponsesPerRound)
	crashed   bool
}

// eventBlockSize is how many pooled events are allocated at once when the
// free list runs dry.
const eventBlockSize = 64

// Network drives a set of handlers over a latency-weighted graph.
type Network struct {
	g   *graph.Graph
	cfg Config
	// nodes is indexed by NodeID; states are stored contiguously so that
	// per-node engine structures cost one allocation, not n.
	nodes []nodeState
	// ring is the event calendar: ring[r % len(ring)] holds the events that
	// complete at absolute round r. Its size covers the largest possible
	// delivery delay (maxLatency under FullRTTDelivery, ⌈maxLatency/2⌉
	// otherwise) plus the +1 congestion requeue, and grows on demand if a
	// latency is raised after construction.
	ring [][]*event
	// free is the event free list: delivered events return here and are
	// reused by later initiations, so steady-state delivery does not allocate.
	free     []*event
	inFlight int
	round    int
	metrics  Metrics
	nextExch uint64
	// peerIdx[nodeOff[u]+i] is the index, in the neighbor list of the peer
	// across u's i-th incident edge, of that same edge — the dense
	// replacement for the (node, edgeID) -> index map on the delivery path.
	peerIdx []int32
	nodeOff []int32
	loads   []NodeLoad
	closed  bool
}

// NewNetwork creates a network over g. Attach handlers with SetHandler (or
// SetProc) for every node before calling Run.
func NewNetwork(g *graph.Graph, cfg Config) *Network {
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = DefaultMaxRounds
	}
	if cfg.NHint <= 0 {
		cfg.NHint = g.N()
	}
	ringSize := g.MaxLatency() + 2
	if ringSize < 4 {
		ringSize = 4
	}
	nw := &Network{
		g:     g,
		cfg:   cfg,
		nodes: make([]nodeState, g.N()),
		ring:  make([][]*event, ringSize),
		loads: make([]NodeLoad, g.N()),
	}
	nw.buildPeerIndex()
	return nw
}

// buildPeerIndex precomputes, for every half-edge (u, i), the index of the
// same edge in the peer's neighbor list. Two passes over the adjacency lists
// replace the old map[int64]int with two dense slices.
func (nw *Network) buildPeerIndex() {
	g := nw.g
	edges := g.Edges()
	m := g.M()
	// posU[id] / posV[id]: position of edge id in the neighbor list of its U
	// and V endpoints respectively (temporaries for the build).
	posU := make([]int32, m)
	posV := make([]int32, m)
	nw.nodeOff = make([]int32, g.N()+1)
	for u := 0; u < g.N(); u++ {
		nw.nodeOff[u+1] = nw.nodeOff[u] + int32(g.Degree(u))
		for idx, he := range g.Neighbors(u) {
			if edges[he.ID].U == u {
				posU[he.ID] = int32(idx)
			} else {
				posV[he.ID] = int32(idx)
			}
		}
	}
	nw.peerIdx = make([]int32, 2*m)
	for u := 0; u < g.N(); u++ {
		off := nw.nodeOff[u]
		for idx, he := range g.Neighbors(u) {
			if edges[he.ID].U == he.To {
				nw.peerIdx[off+int32(idx)] = posU[he.ID]
			} else {
				nw.peerIdx[off+int32(idx)] = posV[he.ID]
			}
		}
	}
}

// getEvent pops a pooled event, allocating a fresh block when the pool is
// empty. All fields are overwritten by the caller.
func (nw *Network) getEvent() *event {
	if n := len(nw.free); n > 0 {
		ev := nw.free[n-1]
		nw.free = nw.free[:n-1]
		return ev
	}
	blk := make([]event, eventBlockSize)
	for i := 1; i < len(blk); i++ {
		nw.free = append(nw.free, &blk[i])
	}
	return &blk[0]
}

// putEvent returns a delivered event to the pool. The payload reference is
// dropped so protocol state can be collected.
func (nw *Network) putEvent(ev *event) {
	ev.payload = nil
	nw.free = append(nw.free, ev)
}

// Graph returns the underlying graph.
func (nw *Network) Graph() *graph.Graph { return nw.g }

// Round returns the current round number.
func (nw *Network) Round() int { return nw.round }

// NHint returns the network-size upper bound known to nodes.
func (nw *Network) NHint() int { return nw.cfg.NHint }

// Metrics returns a copy of the accumulated metrics.
func (nw *Network) Metrics() Metrics { return nw.metrics }

// Loads returns a copy of the per-node traffic loads.
func (nw *Network) Loads() []NodeLoad {
	out := make([]NodeLoad, len(nw.loads))
	copy(out, nw.loads)
	return out
}

// SetHandler attaches a handler to node u.
func (nw *Network) SetHandler(u graph.NodeID, h Handler) {
	st := &nw.nodes[u]
	st.id = u
	st.handler = h
	st.env = nodeEnv{nw: nw, node: st}
	st.ctx = Context{env: &st.env}
}

// Handler returns the handler attached to node u.
func (nw *Network) Handler(u graph.NodeID) Handler { return nw.nodes[u].handler }

// Context is a node's interface to the engine. A Context is only valid
// during the engine callbacks of its own node. It is a thin façade over an
// Env backend (see env.go), so any runtime that implements Env can drive
// the same Handler protocols.
type Context struct {
	env   Env
	rand  *rand.Rand
	views []EdgeView // lazily built, reused by Neighbors
}

// ID returns the node's identifier.
func (c *Context) ID() graph.NodeID { return c.env.NodeID() }

// NHint returns the upper bound on the network size known to nodes.
func (c *Context) NHint() int { return c.env.NHint() }

// Round returns the current round.
func (c *Context) Round() int { return c.env.Round() }

// Degree returns the node's degree.
func (c *Context) Degree() int { return c.env.Graph().Degree(c.env.NodeID()) }

// Neighbor returns the node's idx-th incident edge. Latency is included only
// when the network has known latencies.
func (c *Context) Neighbor(idx int) EdgeView {
	he := c.env.Graph().Neighbors(c.env.NodeID())[idx]
	ev := EdgeView{To: he.To, Index: idx, EdgeID: he.ID}
	if c.env.KnownLatencies() {
		ev.Latency = he.Latency
	}
	return ev
}

// Neighbors returns all incident edges (see Neighbor for latency rules). The
// returned slice is cached and reused across calls (topology and latencies
// are fixed for the duration of a run); callers must treat it as read-only
// and must not retain it past the current callback.
func (c *Context) Neighbors() []EdgeView {
	hes := c.env.Graph().Neighbors(c.env.NodeID())
	if c.views == nil {
		c.views = make([]EdgeView, len(hes))
		for i := range hes {
			c.views[i] = c.Neighbor(i)
		}
	}
	return c.views
}

// Rand returns the node's deterministic random stream. The stream depends
// only on (seed, node), so a protocol makes identical random choices under
// every runtime that preserves its tick count. The *rand.Rand comes from a
// pool (reseeded on acquisition, so the stream is unaffected) and must not be
// retained after the run.
func (c *Context) Rand() *rand.Rand {
	if c.rand == nil {
		c.rand = rng.Acquire(c.env.Seed(), uint64(c.env.NodeID())+1)
	}
	return c.rand
}

// Initiate starts an exchange on the node's idx-th edge carrying the given
// request payload. At most one initiation per node per round is allowed; a
// second call in the same round returns an error. It returns the exchange ID.
func (c *Context) Initiate(idx int, payload Payload) (uint64, error) {
	return c.env.Initiate(idx, payload)
}

// PayloadSize returns the accounted size of a payload: SizeBytes when the
// payload implements Sizer, 1 byte otherwise.
func PayloadSize(p Payload) int {
	if s, ok := p.(Sizer); ok {
		return s.SizeBytes()
	}
	return 1
}

// schedule places ev on the ring calendar for absolute round at. The ring is
// sized for the graph's maximum latency at construction; it grows (rarely)
// if a latency was raised after the network was built.
func (nw *Network) schedule(at int, ev *event) {
	if at-nw.round >= len(nw.ring) {
		nw.growRing(at - nw.round + 1)
	}
	i := at % len(nw.ring)
	nw.ring[i] = append(nw.ring[i], ev)
	nw.inFlight++
}

// growRing resizes the calendar to hold at least need future rounds,
// rehashing live slots by their absolute round. All live events sit in
// rounds [nw.round, nw.round+len(ring)), which makes the absolute round of
// slot i recoverable.
func (nw *Network) growRing(need int) {
	old := nw.ring
	size := len(old) * 2
	for size < need {
		size *= 2
	}
	fresh := make([][]*event, size)
	for i, evs := range old {
		if len(evs) == 0 {
			continue
		}
		r := nw.round + ((i-nw.round%len(old))+len(old))%len(old)
		fresh[r%size] = evs
	}
	nw.ring = fresh
}

// Predicate inspects global state each round; Run stops when it returns
// true. A nil predicate stops only when every handler is Done.
type Predicate func(nw *Network) bool

// RunResult reports the outcome of a run.
type RunResult struct {
	Metrics Metrics
	// Completed is true when the predicate fired (or all handlers finished).
	Completed bool
}

// Run starts every handler and executes rounds until the predicate fires,
// every handler reports Done, the round budget is exhausted (ErrMaxRounds),
// or no progress is possible (ErrStalled).
func (nw *Network) Run(pred Predicate) (RunResult, error) {
	if nw.closed {
		return RunResult{}, errors.New("sim: network already closed")
	}
	for u := range nw.nodes {
		if nw.nodes[u].handler == nil {
			return RunResult{}, fmt.Errorf("sim: node %d has no handler", u)
		}
	}
	defer nw.Close()
	for u := range nw.nodes {
		st := &nw.nodes[u]
		st.handler.Start(&st.ctx)
	}
	if pred != nil && pred(nw) {
		return RunResult{Metrics: nw.metrics, Completed: true}, nil
	}
	for nw.round = 1; nw.round <= nw.cfg.MaxRounds; nw.round++ {
		nw.applyCrashes()
		if nw.cfg.MaxResponsesPerRound > 0 {
			for u := range nw.nodes {
				nw.nodes[u].served = 0
			}
		}
		nw.deliver()
		active := nw.tick()
		nw.metrics.Rounds = nw.round
		if pred != nil && pred(nw) {
			return RunResult{Metrics: nw.metrics, Completed: true}, nil
		}
		if nw.allDone() {
			return RunResult{Metrics: nw.metrics, Completed: pred == nil}, nil
		}
		if !active && nw.inFlight == 0 {
			return RunResult{Metrics: nw.metrics}, fmt.Errorf("%w (round %d)", ErrStalled, nw.round)
		}
	}
	nw.metrics.Rounds = nw.cfg.MaxRounds
	return RunResult{Metrics: nw.metrics}, fmt.Errorf("%w (%d)", ErrMaxRounds, nw.cfg.MaxRounds)
}

// deliver processes phase A of the round: request arrivals (which generate
// response events, possibly delivered in this same round when the remaining
// delay is zero) and response arrivals. Zero-delay responses are appended to
// the current slot during the scan and flushed by the same loop, preserving
// the old map-based engine's event order exactly. The slot is re-read every
// iteration because a handler callback may grow either the slot (zero-delay
// response) or the whole ring (an Initiate that outgrows it).
func (nw *Network) deliver() {
	traced := nw.cfg.Trace != nil
	for k := 0; ; k++ {
		slot := nw.ring[nw.round%len(nw.ring)]
		if k >= len(slot) {
			break
		}
		ev := slot[k]
		nw.inFlight--
		if nw.nodes[ev.to].crashed {
			// Fail-stop: a crashed node neither answers requests nor
			// consumes responses; the message is lost.
			nw.putEvent(ev)
			continue
		}
		switch ev.kind {
		case evRequest:
			st := &nw.nodes[ev.to]
			if nw.cfg.MaxResponsesPerRound > 0 && st.served >= nw.cfg.MaxResponsesPerRound {
				// In-degree bound reached: the request waits in the
				// responder's queue until a later round (not traced —
				// only the eventual delivery is an observable event).
				nw.schedule(nw.round+1, ev)
				continue
			}
			st.served++
			nw.loads[ev.to].Answered++
			if traced {
				nw.cfg.Trace(TraceEvent{Kind: TraceRequest, Round: nw.round, From: ev.from, To: ev.to, EdgeID: ev.edgeID, Latency: ev.latency})
			}
			respPayload := st.handler.OnRequest(&st.ctx, Request{
				From:      ev.from,
				EdgeIndex: int(ev.toIdx),
				Payload:   ev.payload,
			})
			respDelay := ev.latency - (ev.latency+1)/2
			if nw.cfg.FullRTTDelivery {
				respDelay = 0
			}
			resp := nw.getEvent()
			*resp = event{
				kind:        evResponse,
				from:        ev.to,
				to:          ev.from,
				edgeID:      ev.edgeID,
				toIdx:       ev.backIdx,
				payload:     respPayload,
				initiatedAt: ev.initiatedAt,
				latency:     ev.latency,
				exchangeID:  ev.exchangeID,
			}
			nw.schedule(nw.round+respDelay, resp)
			nw.metrics.Responses++
			nw.metrics.Bytes += PayloadSize(respPayload)
			nw.putEvent(ev)
		case evResponse:
			st := &nw.nodes[ev.to]
			if traced {
				nw.cfg.Trace(TraceEvent{Kind: TraceResponse, Round: nw.round, From: ev.from, To: ev.to, EdgeID: ev.edgeID, Latency: ev.latency})
			}
			st.handler.OnResponse(&st.ctx, Response{
				From:        ev.from,
				EdgeIndex:   int(ev.toIdx),
				Payload:     ev.payload,
				Latency:     ev.latency,
				InitiatedAt: ev.initiatedAt,
			})
			nw.putEvent(ev)
		}
	}
	// Reset the slot, keeping its backing array for a future round. Entries
	// are nilled so the only live references to pooled events are the pool's.
	i := nw.round % len(nw.ring)
	slot := nw.ring[i]
	for j := range slot {
		slot[j] = nil
	}
	nw.ring[i] = slot[:0]
}

// tick runs phase B: every non-done handler gets a Tick. It reports whether
// any handler is still active (not done).
func (nw *Network) tick() bool {
	active := false
	for u := range nw.nodes {
		st := &nw.nodes[u]
		st.initiated = false
		if st.crashed || st.handler.Done() {
			continue
		}
		active = true
		st.handler.Tick(&st.ctx)
	}
	return active
}

// applyCrashes fail-stops the nodes whose crash round has arrived.
func (nw *Network) applyCrashes() {
	if len(nw.cfg.Crashes) == 0 {
		return
	}
	for v, r := range nw.cfg.Crashes {
		if r == nw.round && v >= 0 && v < len(nw.nodes) {
			nw.nodes[v].crashed = true
			nw.trace(TraceEvent{Kind: TraceCrash, Round: nw.round, From: v, To: -1})
		}
	}
}

// Crashed reports whether node v has fail-stopped.
func (nw *Network) Crashed(v graph.NodeID) bool { return nw.nodes[v].crashed }

func (nw *Network) allDone() bool {
	for u := range nw.nodes {
		st := &nw.nodes[u]
		if st.crashed {
			continue
		}
		if !st.handler.Done() {
			return false
		}
	}
	return true
}

// Close releases engine resources: it stops all coroutine handlers (waiting
// for their goroutines to exit) and returns the nodes' pooled random streams.
// Safe to call twice.
func (nw *Network) Close() {
	if nw.closed {
		return
	}
	nw.closed = true
	for u := range nw.nodes {
		st := &nw.nodes[u]
		if p, ok := st.handler.(*Proc); ok {
			p.stop()
		}
		if st.ctx.rand != nil {
			rng.Release(st.ctx.rand)
			st.ctx.rand = nil
		}
	}
}
