// Package sim implements the paper's communication model (Section 1) as a
// deterministic, round-driven network simulator:
//
//   - Nodes communicate over the edges of a latency-weighted graph in
//     synchronous rounds.
//   - In each round a node may initiate at most one exchange: it sends a
//     request to a chosen neighbor and automatically receives a response.
//     Over an edge of latency ℓ the request arrives after ⌈ℓ/2⌉ rounds and
//     the response after the remaining ⌊ℓ/2⌋ rounds, so the round trip takes
//     exactly ℓ rounds, as the model requires.
//   - Communication is non-blocking: a node may initiate a new exchange every
//     round even while earlier exchanges are in flight.
//   - Nodes know the identity of their neighbors and (optionally, Section 5)
//     the latency of adjacent edges; they learn an edge's latency after
//     completing an exchange over it.
//
// Protocols attach to nodes either as state machines (Handler) or as
// sequential coroutines (Proc, see proc.go), which the engine drives in
// lockstep with the round barrier.
package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"gossip/internal/graph"
	"gossip/internal/rng"
)

// Payload is a protocol-defined message body. Payloads must be treated as
// immutable once passed to the engine: the request payload is captured at
// initiation time and delivered ⌈ℓ/2⌉ rounds later unchanged.
type Payload interface{}

// Sizer lets payloads report their size for message accounting.
type Sizer interface{ SizeBytes() int }

// EdgeView is a node's view of one incident edge. Latency is the true edge
// latency when the network is configured with known latencies, and 0
// (unknown) otherwise.
type EdgeView struct {
	To      graph.NodeID
	Index   int // index into the node's neighbor list
	EdgeID  int
	Latency int
}

// Response is delivered to the initiator when an exchange completes.
type Response struct {
	From        graph.NodeID
	EdgeIndex   int
	Payload     Payload
	Latency     int // the true edge latency, learned by completing the exchange
	InitiatedAt int
}

// Request is delivered to the responder when a request arrives.
type Request struct {
	From      graph.NodeID
	EdgeIndex int // index of the edge in the *responder's* neighbor list
	Payload   Payload
}

// Handler is the state-machine protocol interface. The engine calls Start
// once, then every round: first delivery callbacks (OnRequest/OnResponse) for
// arrivals, then Tick. A handler initiates exchanges via Context.Initiate.
type Handler interface {
	Start(ctx *Context)
	Tick(ctx *Context)
	OnRequest(ctx *Context, req Request) Payload
	OnResponse(ctx *Context, resp Response)
	// Done reports local termination; when every handler is done the run
	// stops. Handlers that never terminate locally should return false and
	// rely on the run predicate.
	Done() bool
}

// Config controls a Network.
type Config struct {
	KnownLatencies bool
	Seed           uint64
	MaxRounds      int // 0 means DefaultMaxRounds
	NHint          int // polynomial upper bound on n known to nodes; 0 = exact n
	// FullRTTDelivery delivers the request only at t+ℓ (response still at
	// t+ℓ). This is the "no pipelining" ablation; the default split delivery
	// (⌈ℓ/2⌉ + ⌊ℓ/2⌋) matches the round-trip semantics of the paper while
	// letting information flow one-way in ⌈ℓ/2⌉.
	FullRTTDelivery bool
	// Crashes schedules node crash failures: Crashes[v] = r makes node v
	// fail-stop at the beginning of round r. A crashed node no longer ticks,
	// drops incoming requests without responding (so a blocking exchange
	// with it never completes), and its in-flight initiations are lost. The
	// paper's conclusion notes push-pull is robust to such failures while
	// the spanner-based algorithms are not; this knob is the fault-injection
	// extension that measures it.
	Crashes map[graph.NodeID]int
	// Trace, when non-nil, receives every engine event (initiations,
	// deliveries, crashes) synchronously.
	Trace Tracer
	// MaxResponsesPerRound bounds how many incoming requests a node can
	// answer per round (0 = unlimited, the paper's base model). Excess
	// requests queue and are answered in FIFO order in later rounds, so
	// congestion at a hub stretches effective latencies. This implements the
	// restricted model raised in the paper's conclusion (Daum, Kuhn, Maus:
	// rumor spreading with bounded in-degree).
	MaxResponsesPerRound int
}

// DefaultMaxRounds bounds runs whose predicate never fires.
const DefaultMaxRounds = 2_000_000

// ErrMaxRounds reports that the round budget was exhausted before the
// completion predicate fired.
var ErrMaxRounds = errors.New("sim: max rounds exceeded")

// ErrStalled reports that no node is active and no event is in flight, yet
// the completion predicate has not fired.
var ErrStalled = errors.New("sim: network stalled before completion")

// Metrics aggregates the cost of a run.
type Metrics struct {
	Rounds          int
	Requests        int
	Responses       int
	Bytes           int
	EdgeActivations int
}

// Messages returns the total message count (requests + responses).
func (m Metrics) Messages() int { return m.Requests + m.Responses }

// NodeLoad reports one node's share of the traffic.
type NodeLoad struct {
	Initiated int // exchanges this node initiated
	Answered  int // requests this node answered
}

// Total returns the node's total handled messages.
func (l NodeLoad) Total() int { return l.Initiated + l.Answered }

type eventKind uint8

const (
	evRequest eventKind = iota + 1
	evResponse
)

type event struct {
	kind        eventKind
	from, to    graph.NodeID
	edgeID      int
	payload     Payload
	initiatedAt int
	latency     int
	exchangeID  uint64
}

type nodeState struct {
	id        graph.NodeID
	handler   Handler
	ctx       Context
	initiated bool // initiated an exchange this round
	served    int  // requests answered this round (MaxResponsesPerRound)
	crashed   bool
}

// Network drives a set of handlers over a latency-weighted graph.
type Network struct {
	g         *graph.Graph
	cfg       Config
	nodes     []*nodeState
	pending   map[int][]*event // completion round -> events
	inFlight  int
	round     int
	metrics   Metrics
	nextExch  uint64
	edgeIdxAt map[int64]int // (node, edgeID) -> index in node's neighbor list
	loads     []NodeLoad
	closed    bool
}

// NewNetwork creates a network over g. Attach handlers with SetHandler (or
// SetProc) for every node before calling Run.
func NewNetwork(g *graph.Graph, cfg Config) *Network {
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = DefaultMaxRounds
	}
	if cfg.NHint <= 0 {
		cfg.NHint = g.N()
	}
	nw := &Network{
		g:         g,
		cfg:       cfg,
		nodes:     make([]*nodeState, g.N()),
		pending:   make(map[int][]*event),
		edgeIdxAt: make(map[int64]int, 2*g.M()),
		loads:     make([]NodeLoad, g.N()),
	}
	for u := 0; u < g.N(); u++ {
		for idx, he := range g.Neighbors(u) {
			nw.edgeIdxAt[int64(u)<<32|int64(he.ID)] = idx
		}
	}
	return nw
}

// Graph returns the underlying graph.
func (nw *Network) Graph() *graph.Graph { return nw.g }

// Round returns the current round number.
func (nw *Network) Round() int { return nw.round }

// NHint returns the network-size upper bound known to nodes.
func (nw *Network) NHint() int { return nw.cfg.NHint }

// Metrics returns a copy of the accumulated metrics.
func (nw *Network) Metrics() Metrics { return nw.metrics }

// Loads returns a copy of the per-node traffic loads.
func (nw *Network) Loads() []NodeLoad {
	out := make([]NodeLoad, len(nw.loads))
	copy(out, nw.loads)
	return out
}

// SetHandler attaches a handler to node u.
func (nw *Network) SetHandler(u graph.NodeID, h Handler) {
	st := &nodeState{id: u, handler: h}
	st.ctx = Context{env: &nodeEnv{nw: nw, node: st}}
	nw.nodes[u] = st
}

// Handler returns the handler attached to node u.
func (nw *Network) Handler(u graph.NodeID) Handler { return nw.nodes[u].handler }

// Context is a node's interface to the engine. A Context is only valid
// during the engine callbacks of its own node. It is a thin façade over an
// Env backend (see env.go), so any runtime that implements Env can drive
// the same Handler protocols.
type Context struct {
	env  Env
	rand *rand.Rand
}

// ID returns the node's identifier.
func (c *Context) ID() graph.NodeID { return c.env.NodeID() }

// NHint returns the upper bound on the network size known to nodes.
func (c *Context) NHint() int { return c.env.NHint() }

// Round returns the current round.
func (c *Context) Round() int { return c.env.Round() }

// Degree returns the node's degree.
func (c *Context) Degree() int { return c.env.Graph().Degree(c.env.NodeID()) }

// Neighbor returns the node's idx-th incident edge. Latency is included only
// when the network has known latencies.
func (c *Context) Neighbor(idx int) EdgeView {
	he := c.env.Graph().Neighbors(c.env.NodeID())[idx]
	ev := EdgeView{To: he.To, Index: idx, EdgeID: he.ID}
	if c.env.KnownLatencies() {
		ev.Latency = he.Latency
	}
	return ev
}

// Neighbors returns all incident edges (see Neighbor for latency rules).
func (c *Context) Neighbors() []EdgeView {
	hes := c.env.Graph().Neighbors(c.env.NodeID())
	out := make([]EdgeView, len(hes))
	for i := range hes {
		out[i] = c.Neighbor(i)
	}
	return out
}

// Rand returns the node's deterministic random stream. The stream depends
// only on (seed, node), so a protocol makes identical random choices under
// every runtime that preserves its tick count.
func (c *Context) Rand() *rand.Rand {
	if c.rand == nil {
		c.rand = rng.Stream(c.env.Seed(), uint64(c.env.NodeID())+1)
	}
	return c.rand
}

// Initiate starts an exchange on the node's idx-th edge carrying the given
// request payload. At most one initiation per node per round is allowed; a
// second call in the same round returns an error. It returns the exchange ID.
func (c *Context) Initiate(idx int, payload Payload) (uint64, error) {
	return c.env.Initiate(idx, payload)
}

// PayloadSize returns the accounted size of a payload: SizeBytes when the
// payload implements Sizer, 1 byte otherwise.
func PayloadSize(p Payload) int {
	if s, ok := p.(Sizer); ok {
		return s.SizeBytes()
	}
	return 1
}

func (nw *Network) schedule(at int, ev *event) {
	nw.pending[at] = append(nw.pending[at], ev)
	nw.inFlight++
}

// Predicate inspects global state each round; Run stops when it returns
// true. A nil predicate stops only when every handler is Done.
type Predicate func(nw *Network) bool

// RunResult reports the outcome of a run.
type RunResult struct {
	Metrics Metrics
	// Completed is true when the predicate fired (or all handlers finished).
	Completed bool
}

// Run starts every handler and executes rounds until the predicate fires,
// every handler reports Done, the round budget is exhausted (ErrMaxRounds),
// or no progress is possible (ErrStalled).
func (nw *Network) Run(pred Predicate) (RunResult, error) {
	if nw.closed {
		return RunResult{}, errors.New("sim: network already closed")
	}
	for u, st := range nw.nodes {
		if st == nil {
			return RunResult{}, fmt.Errorf("sim: node %d has no handler", u)
		}
	}
	defer nw.Close()
	for _, st := range nw.nodes {
		st.handler.Start(&st.ctx)
	}
	if pred != nil && pred(nw) {
		return RunResult{Metrics: nw.metrics, Completed: true}, nil
	}
	for nw.round = 1; nw.round <= nw.cfg.MaxRounds; nw.round++ {
		nw.applyCrashes()
		if nw.cfg.MaxResponsesPerRound > 0 {
			for _, st := range nw.nodes {
				st.served = 0
			}
		}
		nw.deliver()
		active := nw.tick()
		nw.metrics.Rounds = nw.round
		if pred != nil && pred(nw) {
			return RunResult{Metrics: nw.metrics, Completed: true}, nil
		}
		if nw.allDone() {
			return RunResult{Metrics: nw.metrics, Completed: pred == nil}, nil
		}
		if !active && nw.inFlight == 0 {
			return RunResult{Metrics: nw.metrics}, fmt.Errorf("%w (round %d)", ErrStalled, nw.round)
		}
	}
	nw.metrics.Rounds = nw.cfg.MaxRounds
	return RunResult{Metrics: nw.metrics}, fmt.Errorf("%w (%d)", ErrMaxRounds, nw.cfg.MaxRounds)
}

// deliver processes phase A of the round: request arrivals (which generate
// response events, possibly delivered in this same round when the remaining
// delay is zero) and response arrivals.
func (nw *Network) deliver() {
	for {
		evs := nw.pending[nw.round]
		if len(evs) == 0 {
			delete(nw.pending, nw.round)
			return
		}
		delete(nw.pending, nw.round)
		for _, ev := range evs {
			nw.inFlight--
			if nw.nodes[ev.to].crashed {
				// Fail-stop: a crashed node neither answers requests nor
				// consumes responses; the message is lost.
				continue
			}
			switch ev.kind {
			case evRequest:
				st := nw.nodes[ev.to]
				if nw.cfg.MaxResponsesPerRound > 0 && st.served >= nw.cfg.MaxResponsesPerRound {
					// In-degree bound reached: the request waits in the
					// responder's queue until a later round (not traced —
					// only the eventual delivery is an observable event).
					nw.schedule(nw.round+1, ev)
					continue
				}
				st.served++
				nw.loads[ev.to].Answered++
				nw.trace(TraceEvent{Kind: TraceRequest, Round: nw.round, From: ev.from, To: ev.to, EdgeID: ev.edgeID, Latency: ev.latency})
				idx := nw.edgeIdxAt[int64(ev.to)<<32|int64(ev.edgeID)]
				respPayload := st.handler.OnRequest(&st.ctx, Request{
					From:      ev.from,
					EdgeIndex: idx,
					Payload:   ev.payload,
				})
				respDelay := ev.latency - (ev.latency+1)/2
				if nw.cfg.FullRTTDelivery {
					respDelay = 0
				}
				nw.schedule(nw.round+respDelay, &event{
					kind:        evResponse,
					from:        ev.to,
					to:          ev.from,
					edgeID:      ev.edgeID,
					payload:     respPayload,
					initiatedAt: ev.initiatedAt,
					latency:     ev.latency,
					exchangeID:  ev.exchangeID,
				})
				nw.metrics.Responses++
				nw.metrics.Bytes += PayloadSize(respPayload)
			case evResponse:
				st := nw.nodes[ev.to]
				nw.trace(TraceEvent{Kind: TraceResponse, Round: nw.round, From: ev.from, To: ev.to, EdgeID: ev.edgeID, Latency: ev.latency})
				idx := nw.edgeIdxAt[int64(ev.to)<<32|int64(ev.edgeID)]
				st.handler.OnResponse(&st.ctx, Response{
					From:        ev.from,
					EdgeIndex:   idx,
					Payload:     ev.payload,
					Latency:     ev.latency,
					InitiatedAt: ev.initiatedAt,
				})
			}
		}
		// Responses with zero remaining delay were appended for this round;
		// loop to flush them.
	}
}

// tick runs phase B: every non-done handler gets a Tick. It reports whether
// any handler is still active (not done).
func (nw *Network) tick() bool {
	active := false
	for _, st := range nw.nodes {
		st.initiated = false
		if st.crashed || st.handler.Done() {
			continue
		}
		active = true
		st.handler.Tick(&st.ctx)
	}
	return active
}

// applyCrashes fail-stops the nodes whose crash round has arrived.
func (nw *Network) applyCrashes() {
	if len(nw.cfg.Crashes) == 0 {
		return
	}
	for v, r := range nw.cfg.Crashes {
		if r == nw.round && v >= 0 && v < len(nw.nodes) {
			nw.nodes[v].crashed = true
			nw.trace(TraceEvent{Kind: TraceCrash, Round: nw.round, From: v, To: -1})
		}
	}
}

// Crashed reports whether node v has fail-stopped.
func (nw *Network) Crashed(v graph.NodeID) bool { return nw.nodes[v].crashed }

func (nw *Network) allDone() bool {
	for _, st := range nw.nodes {
		if st.crashed {
			continue
		}
		if !st.handler.Done() {
			return false
		}
	}
	return true
}

// Close releases engine resources; in particular it stops all coroutine
// handlers and waits for their goroutines to exit. Safe to call twice.
func (nw *Network) Close() {
	if nw.closed {
		return
	}
	nw.closed = true
	for _, st := range nw.nodes {
		if st == nil {
			continue
		}
		if p, ok := st.handler.(*Proc); ok {
			p.stop()
		}
	}
}
