package sim

import (
	"errors"
	"runtime"
	"testing"

	"gossip/internal/graph"
)

// echoHandler is a minimal state-machine handler used to probe engine
// mechanics: it initiates on a fixed edge at a fixed round and records what
// comes back.
type echoHandler struct {
	initiateAt int
	edgeIdx    int
	payload    Payload

	gotRequests  []Request
	gotResponses []Response
	reqRound     []int
	respRound    []int
}

func (h *echoHandler) Start(ctx *Context) {}

func (h *echoHandler) Tick(ctx *Context) {
	if ctx.Round() == h.initiateAt && h.payload != nil {
		if _, err := ctx.Initiate(h.edgeIdx, h.payload); err != nil {
			panic(err)
		}
	}
}

func (h *echoHandler) OnRequest(ctx *Context, req Request) Payload {
	h.gotRequests = append(h.gotRequests, req)
	h.reqRound = append(h.reqRound, ctx.Round())
	return "ack"
}

func (h *echoHandler) OnResponse(ctx *Context, resp Response) {
	h.gotResponses = append(h.gotResponses, resp)
	h.respRound = append(h.respRound, ctx.Round())
}

func (h *echoHandler) Done() bool { return false }

func pair(latency int) (*graph.Graph, *Network, *echoHandler, *echoHandler) {
	g := graph.New(2)
	g.MustAddEdge(0, 1, latency)
	nw := NewNetwork(g, Config{Seed: 1, MaxRounds: 100})
	a := &echoHandler{initiateAt: 1, edgeIdx: 0, payload: "hello"}
	b := &echoHandler{}
	nw.SetHandler(0, a)
	nw.SetHandler(1, b)
	return g, nw, a, b
}

func TestExchangeRoundTripEqualsLatency(t *testing.T) {
	for _, lat := range []int{1, 2, 3, 7, 10} {
		_, nw, a, b := pair(lat)
		_, err := nw.Run(func(nw *Network) bool { return len(a.gotResponses) > 0 })
		if err != nil {
			t.Fatalf("lat=%d: %v", lat, err)
		}
		if len(b.gotRequests) != 1 {
			t.Fatalf("lat=%d: responder got %d requests", lat, len(b.gotRequests))
		}
		// Request arrives at ⌈ℓ/2⌉ after initiation (round 1).
		wantReq := 1 + (lat+1)/2
		if b.reqRound[0] != wantReq {
			t.Errorf("lat=%d: request delivered at round %d, want %d", lat, b.reqRound[0], wantReq)
		}
		// Response returns exactly ℓ rounds after initiation.
		wantResp := 1 + lat
		if a.respRound[0] != wantResp {
			t.Errorf("lat=%d: response delivered at round %d, want %d", lat, a.respRound[0], wantResp)
		}
		if a.gotResponses[0].Latency != lat {
			t.Errorf("lat=%d: response reported latency %d", lat, a.gotResponses[0].Latency)
		}
		if a.gotResponses[0].Payload != "ack" {
			t.Errorf("lat=%d: payload %v", lat, a.gotResponses[0].Payload)
		}
	}
}

func TestFullRTTDeliveryAblation(t *testing.T) {
	g := graph.New(2)
	g.MustAddEdge(0, 1, 8)
	nw := NewNetwork(g, Config{Seed: 1, MaxRounds: 100, FullRTTDelivery: true})
	a := &echoHandler{initiateAt: 1, edgeIdx: 0, payload: "x"}
	b := &echoHandler{}
	nw.SetHandler(0, a)
	nw.SetHandler(1, b)
	if _, err := nw.Run(func(nw *Network) bool { return len(a.gotResponses) > 0 }); err != nil {
		t.Fatal(err)
	}
	if b.reqRound[0] != 9 {
		t.Errorf("full-RTT request delivered at %d, want 9", b.reqRound[0])
	}
	if a.respRound[0] != 9 {
		t.Errorf("full-RTT response delivered at %d, want 9", a.respRound[0])
	}
}

func TestOneInitiationPerRound(t *testing.T) {
	g := graph.Clique(3, 1)
	nw := NewNetwork(g, Config{Seed: 1, MaxRounds: 10})
	var errSecond error
	greedy := &funcHandler{
		tick: func(ctx *Context) {
			if ctx.Round() != 1 {
				return
			}
			if _, err := ctx.Initiate(0, "a"); err != nil {
				panic(err)
			}
			_, errSecond = ctx.Initiate(1, "b")
		},
	}
	nw.SetHandler(0, greedy)
	nw.SetHandler(1, &funcHandler{})
	nw.SetHandler(2, &funcHandler{})
	if _, err := nw.Run(func(nw *Network) bool { return nw.Round() >= 2 }); err != nil {
		t.Fatal(err)
	}
	if errSecond == nil {
		t.Error("second initiation in one round must fail")
	}
}

func TestInitiateValidation(t *testing.T) {
	g := graph.Path(2, 1)
	nw := NewNetwork(g, Config{Seed: 1, MaxRounds: 5})
	var gotErr error
	h := &funcHandler{tick: func(ctx *Context) {
		if ctx.Round() == 1 {
			_, gotErr = ctx.Initiate(5, "x")
		}
	}}
	nw.SetHandler(0, h)
	nw.SetHandler(1, &funcHandler{})
	if _, err := nw.Run(func(nw *Network) bool { return nw.Round() >= 2 }); err != nil {
		t.Fatal(err)
	}
	if gotErr == nil {
		t.Error("out-of-range edge index must fail")
	}
}

// funcHandler adapts closures to Handler.
type funcHandler struct {
	tick func(ctx *Context)
	done func() bool
}

func (h *funcHandler) Start(ctx *Context) {}
func (h *funcHandler) Tick(ctx *Context) {
	if h.tick != nil {
		h.tick(ctx)
	}
}
func (h *funcHandler) OnRequest(ctx *Context, req Request) Payload { return nil }
func (h *funcHandler) OnResponse(ctx *Context, resp Response)      {}
func (h *funcHandler) Done() bool                                  { return h.done != nil && h.done() }

func TestLatencyHiddenWhenUnknown(t *testing.T) {
	g := graph.Path(2, 7)
	for _, known := range []bool{true, false} {
		nw := NewNetwork(g, Config{Seed: 1, KnownLatencies: known, MaxRounds: 3})
		var sawLatency int
		h := &funcHandler{tick: func(ctx *Context) {
			sawLatency = ctx.Neighbor(0).Latency
		}}
		nw.SetHandler(0, h)
		nw.SetHandler(1, &funcHandler{})
		if _, err := nw.Run(func(nw *Network) bool { return nw.Round() >= 1 }); err != nil {
			t.Fatal(err)
		}
		want := 0
		if known {
			want = 7
		}
		if sawLatency != want {
			t.Errorf("known=%v: EdgeView.Latency = %d, want %d", known, sawLatency, want)
		}
	}
}

func TestMaxRounds(t *testing.T) {
	g := graph.Path(2, 1)
	nw := NewNetwork(g, Config{Seed: 1, MaxRounds: 5})
	nw.SetHandler(0, &echoHandler{initiateAt: -1})
	nw.SetHandler(1, &echoHandler{})
	_, err := nw.Run(func(nw *Network) bool { return false })
	if !errors.Is(err, ErrStalled) && !errors.Is(err, ErrMaxRounds) {
		t.Errorf("expected stall or max-rounds, got %v", err)
	}
}

func TestMissingHandlerRejected(t *testing.T) {
	g := graph.Path(2, 1)
	nw := NewNetwork(g, Config{Seed: 1})
	nw.SetHandler(0, &funcHandler{})
	if _, err := nw.Run(nil); err == nil {
		t.Error("run with missing handler must fail")
	}
}

func TestMetricsAccounting(t *testing.T) {
	_, nw, a, _ := pair(4)
	res, err := nw.Run(func(nw *Network) bool { return len(a.gotResponses) > 0 })
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Requests != 1 || res.Metrics.Responses != 1 {
		t.Errorf("metrics = %+v, want 1 request + 1 response", res.Metrics)
	}
	if res.Metrics.EdgeActivations != 1 {
		t.Errorf("activations = %d", res.Metrics.EdgeActivations)
	}
	if res.Metrics.Messages() != 2 {
		t.Errorf("Messages() = %d", res.Metrics.Messages())
	}
}

// ---- Proc (coroutine) layer ----

func TestProcExchangeBlocksExactly(t *testing.T) {
	g := graph.New(2)
	g.MustAddEdge(0, 1, 6)
	nw := NewNetwork(g, Config{Seed: 1, MaxRounds: 100})
	var started, finished int
	p0 := NewProc(func(p *Proc) {
		started = p.Round()
		resp := p.Exchange(0, "ping")
		finished = p.Round()
		if resp.Payload != "pong" {
			panic("bad payload")
		}
	})
	p1 := NewProc(func(p *Proc) {})
	p1.HandleRequests(func(p *Proc, req Request) Payload { return "pong" })
	nw.SetHandler(0, p0)
	nw.SetHandler(1, p1)
	if _, err := nw.Run(nil); err != nil {
		t.Fatal(err)
	}
	if finished-started != 6 {
		t.Errorf("Exchange over latency-6 edge took %d rounds, want 6", finished-started)
	}
}

func TestProcSendNonBlocking(t *testing.T) {
	// A proc sends on a slow edge and continues sending on fast ones while
	// the slow exchange is in flight (non-blocking model).
	g := graph.New(3)
	slow := g.MustAddEdge(0, 1, 10)
	_ = slow
	g.MustAddEdge(0, 2, 1)
	nw := NewNetwork(g, Config{Seed: 1, MaxRounds: 100})
	var fastResponses, slowResponses int
	p0 := NewProc(func(p *Proc) {
		p.Send(0, "slow") // latency 10
		for i := 0; i < 5; i++ {
			p.Send(1, "fast")
		}
		p.WaitRounds(20)
	})
	p0.HandleResponses(func(p *Proc, resp Response) {
		if resp.Latency == 10 {
			slowResponses++
		} else {
			fastResponses++
		}
	})
	nw.SetHandler(0, p0)
	nw.SetHandler(1, NewProc(func(p *Proc) {}))
	nw.SetHandler(2, NewProc(func(p *Proc) {}))
	if _, err := nw.Run(nil); err != nil {
		t.Fatal(err)
	}
	if slowResponses != 1 || fastResponses != 5 {
		t.Errorf("responses slow=%d fast=%d, want 1/5", slowResponses, fastResponses)
	}
}

func TestProcWaitRounds(t *testing.T) {
	g := graph.Path(2, 1)
	nw := NewNetwork(g, Config{Seed: 1, MaxRounds: 100})
	var before, after int
	nw.SetHandler(0, NewProc(func(p *Proc) {
		before = p.Round()
		p.WaitRounds(13)
		after = p.Round()
	}))
	nw.SetHandler(1, NewProc(func(p *Proc) {}))
	if _, err := nw.Run(nil); err != nil {
		t.Fatal(err)
	}
	if after-before != 13 {
		t.Errorf("WaitRounds(13) elapsed %d rounds", after-before)
	}
}

func TestProcShutdownNoLeak(t *testing.T) {
	// A proc that would wait forever must be torn down by Close without
	// leaking its goroutine.
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		g := graph.Path(2, 1)
		nw := NewNetwork(g, Config{Seed: 1, MaxRounds: 5})
		nw.SetHandler(0, NewProc(func(p *Proc) {
			p.WaitRounds(1 << 30)
		}))
		nw.SetHandler(1, NewProc(func(p *Proc) {}))
		_, err := nw.Run(nil)
		if err == nil {
			t.Fatal("expected round-budget error")
		}
		nw.Close()
	}
	runtime.Gosched()
	runtime.GC()
	after := runtime.NumGoroutine()
	if after > before+2 {
		t.Errorf("goroutines grew from %d to %d; proc leak", before, after)
	}
}

func TestProcDeterministicRand(t *testing.T) {
	run := func() int {
		g := graph.Clique(4, 1)
		nw := NewNetwork(g, Config{Seed: 99, MaxRounds: 50})
		total := 0
		for u := 0; u < 4; u++ {
			nw.SetHandler(u, NewProc(func(p *Proc) {
				for i := 0; i < 5; i++ {
					total += p.Rand().Intn(1000)
					p.Yield()
				}
			}))
		}
		if _, err := nw.Run(nil); err != nil {
			t.Fatal(err)
		}
		return total
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed produced different random draws: %d vs %d", a, b)
	}
}

func TestNHintDefaultsAndOverride(t *testing.T) {
	g := graph.Path(3, 1)
	nw := NewNetwork(g, Config{Seed: 1})
	if nw.NHint() != 3 {
		t.Errorf("default NHint = %d, want n", nw.NHint())
	}
	nw2 := NewNetwork(g, Config{Seed: 1, NHint: 10})
	if nw2.NHint() != 10 {
		t.Errorf("NHint = %d, want 10", nw2.NHint())
	}
}
