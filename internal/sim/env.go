package sim

import (
	"fmt"

	"gossip/internal/graph"
)

// Env is the engine backend behind a Context — the seam that lets different
// runtimes drive the same Handler state machines. The round simulator's
// Network implements it for deterministic lockstep execution; internal/live
// implements it for wall-clock execution over real concurrent transports.
//
// An Env is per-node: every method answers for the single node it serves,
// and Initiate is only ever called from that node's engine callbacks (the
// round engine's single goroutine, or the node's own goroutine in a live
// runtime), so implementations need no internal locking for it.
type Env interface {
	// NodeID returns the identity of the node this environment serves.
	NodeID() graph.NodeID
	// Graph returns the network graph (topology is global knowledge for
	// neighbor lists; latencies are gated by KnownLatencies).
	Graph() *graph.Graph
	// Round returns the node's current round (a live runtime's tick count).
	Round() int
	// NHint returns the network-size upper bound known to nodes.
	NHint() int
	// Seed returns the run's master seed; per-node random streams derive
	// from it, so two runtimes with equal seeds give every node identical
	// randomness regardless of scheduling.
	Seed() uint64
	// KnownLatencies reports whether nodes may observe adjacent latencies.
	KnownLatencies() bool
	// Initiate starts an exchange on the node's idx-th edge and returns its
	// exchange ID. At most one initiation per node per round is allowed.
	Initiate(idx int, payload Payload) (uint64, error)
}

// NewContext builds a Context over an engine backend. Runtimes other than
// the round simulator use this to drive Handlers unchanged.
func NewContext(env Env) *Context { return &Context{env: env} }

// nodeEnv is the round simulator's Env: it binds a Network to one node.
type nodeEnv struct {
	nw   *Network
	node *nodeState
}

var _ Env = (*nodeEnv)(nil)

func (e *nodeEnv) NodeID() graph.NodeID { return e.node.id }
func (e *nodeEnv) Graph() *graph.Graph  { return e.nw.g }
func (e *nodeEnv) Round() int           { return e.nw.round }
func (e *nodeEnv) NHint() int           { return e.nw.cfg.NHint }
func (e *nodeEnv) Seed() uint64         { return e.nw.cfg.Seed }
func (e *nodeEnv) KnownLatencies() bool { return e.nw.cfg.KnownLatencies }

// Initiate schedules the request event on the round calendar; the paper's
// split delivery (⌈ℓ/2⌉ out, ⌊ℓ/2⌋ back) happens in Network.deliver.
func (e *nodeEnv) Initiate(idx int, payload Payload) (uint64, error) {
	if e.node.initiated {
		return 0, fmt.Errorf("sim: node %d already initiated in round %d", e.node.id, e.nw.round)
	}
	hes := e.nw.g.Neighbors(e.node.id)
	if idx < 0 || idx >= len(hes) {
		return 0, fmt.Errorf("sim: node %d edge index %d out of range [0,%d)", e.node.id, idx, len(hes))
	}
	e.node.initiated = true
	he := hes[idx]
	nw := e.nw
	nw.nextExch++
	reqDelay := (he.Latency + 1) / 2
	if nw.cfg.FullRTTDelivery {
		reqDelay = he.Latency
	}
	ev := nw.getEvent()
	*ev = event{
		kind:        evRequest,
		from:        e.node.id,
		to:          he.To,
		edgeID:      he.ID,
		toIdx:       nw.peerIdx[nw.nodeOff[e.node.id]+int32(idx)],
		backIdx:     int32(idx),
		payload:     payload,
		initiatedAt: nw.round,
		latency:     he.Latency,
		exchangeID:  nw.nextExch,
	}
	nw.schedule(nw.round+reqDelay, ev)
	nw.metrics.Requests++
	nw.metrics.EdgeActivations++
	nw.loads[e.node.id].Initiated++
	nw.metrics.Bytes += PayloadSize(payload)
	if nw.cfg.Trace != nil {
		nw.cfg.Trace(TraceEvent{Kind: TraceInitiate, Round: nw.round, From: e.node.id, To: he.To, EdgeID: he.ID, Latency: he.Latency})
	}
	return nw.nextExch, nil
}
