package sim

import (
	"testing"

	"gossip/internal/graph"
)

// BenchmarkEngineRounds measures raw engine throughput: n state-machine
// nodes each initiating every round.
func BenchmarkEngineRounds(b *testing.B) {
	g := graph.Clique(64, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw := NewNetwork(g, Config{Seed: uint64(i) + 1, MaxRounds: 100})
		for u := 0; u < g.N(); u++ {
			nw.SetHandler(u, &benchHandler{})
		}
		if _, err := nw.Run(func(nw *Network) bool { return nw.Round() >= 50 }); err != nil {
			b.Fatal(err)
		}
	}
}

type benchHandler struct{}

func (h *benchHandler) Start(ctx *Context) {}
func (h *benchHandler) Tick(ctx *Context) {
	_, _ = ctx.Initiate(ctx.Rand().Intn(ctx.Degree()), nil)
}
func (h *benchHandler) OnRequest(ctx *Context, req Request) Payload { return nil }
func (h *benchHandler) OnResponse(ctx *Context, resp Response)      {}
func (h *benchHandler) Done() bool                                  { return false }

// BenchmarkProcRounds measures the coroutine layer's overhead relative to
// the state-machine path.
func BenchmarkProcRounds(b *testing.B) {
	g := graph.Clique(64, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw := NewNetwork(g, Config{Seed: uint64(i) + 1, MaxRounds: 100})
		for u := 0; u < g.N(); u++ {
			p := NewProc(func(p *Proc) {
				for p.Round() < 50 {
					p.Send(p.Rand().Intn(p.Degree()), nil)
					p.Yield()
				}
			})
			nw.SetHandler(u, p)
		}
		if _, err := nw.Run(nil); err != nil {
			b.Fatal(err)
		}
	}
}
