package sim

import (
	"fmt"
	"math/rand"

	"gossip/internal/graph"
)

// ProcFunc is the body of a coroutine protocol. It runs on its own goroutine
// in strict lockstep with the engine: user code executes only between round
// barriers, so a ProcFunc may freely share state with its request/response
// handlers without additional locking.
type ProcFunc func(p *Proc)

// errProcStopped is the sentinel used to unwind a proc goroutine when the
// network shuts down before the proc returns. It never escapes this package:
// the proc runner recovers it.
type procStopped struct{}

// Proc adapts a sequential ProcFunc to the Handler interface. Protocols like
// DTG, RR Broadcast and EID are naturally sequential programs with blocking
// waits; Proc lets them be written that way:
//
//	p.Exchange(idx, msg)  // initiate and block until the response returns
//	p.Send(idx, msg)      // initiate without blocking (non-blocking model)
//	p.Yield()             // wait one round
//
// Incoming requests are answered by the handler installed with
// HandleRequests, which runs while the proc goroutine is parked.
type Proc struct {
	fn         ProcFunc
	onRequest  func(p *Proc, req Request) Payload
	onResponse func(p *Proc, resp Response)

	ctx      *Context
	started  bool
	finished bool

	stepCh chan struct{} // engine -> proc: run until you park
	parkCh chan struct{} // proc -> engine: parked (or finished)
	stopCh chan struct{} // closed on shutdown
	doneCh chan struct{} // closed when the goroutine exits

	park      parkState
	blockIDs  map[uint64]bool      // exchange IDs awaited by Exchange
	arrived   map[uint64]*Response // responses for blocked exchanges
	nextWake  int
	awaitedID uint64
}

type parkKind uint8

const (
	parkYield parkKind = iota + 1
	parkWaitRound
	parkWaitResp
)

type parkState struct {
	kind parkKind
}

// NewProc wraps fn as a coroutine handler.
func NewProc(fn ProcFunc) *Proc {
	return &Proc{
		fn:       fn,
		stepCh:   make(chan struct{}),
		parkCh:   make(chan struct{}),
		stopCh:   make(chan struct{}),
		doneCh:   make(chan struct{}),
		blockIDs: make(map[uint64]bool),
		arrived:  make(map[uint64]*Response),
	}
}

// HandleRequests installs the responder: fn is called for every incoming
// request and returns the response payload. It must be installed before the
// run starts (typically right after NewProc).
func (p *Proc) HandleRequests(fn func(p *Proc, req Request) Payload) *Proc {
	p.onRequest = fn
	return p
}

// HandleResponses installs the callback for responses to non-blocking Sends.
func (p *Proc) HandleResponses(fn func(p *Proc, resp Response)) *Proc {
	p.onResponse = fn
	return p
}

// Start launches the proc goroutine, parked until the first round.
func (p *Proc) Start(ctx *Context) {
	p.ctx = ctx
	p.started = true
	go func() {
		defer close(p.doneCh)
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(procStopped); ok {
					// Clean shutdown unwind: the engine is blocked in stop()
					// waiting on doneCh, so this write cannot race with it.
					p.finished = true
					return
				}
				panic(r)
			}
		}()
		p.waitStep() // park until round 1
		p.fn(p)
		// finished must be visible to the engine before it regains control,
		// or it would tick (and resume) a proc that no longer exists.
		p.finished = true
		// Signal the engine that this tick's work is over; the engine is
		// waiting on parkCh inside resume().
		p.parkCh <- struct{}{}
	}()
}

// Tick resumes the proc goroutine when its park condition is satisfied.
func (p *Proc) Tick(ctx *Context) {
	if p.finished {
		return
	}
	switch p.park.kind {
	case parkYield:
		p.resume()
	case parkWaitRound:
		if ctx.Round() >= p.nextWake {
			p.resume()
		}
	case parkWaitResp:
		if p.arrived[p.awaitedID] != nil {
			p.resume()
		}
	default:
		// First tick after Start.
		p.resume()
	}
}

// resume hands control to the proc goroutine and waits until it parks again
// or finishes. Engine and proc never run concurrently.
func (p *Proc) resume() {
	p.stepCh <- struct{}{}
	<-p.parkCh
}

// waitStep parks the proc goroutine until the engine resumes it. It panics
// with procStopped if the network shut down.
func (p *Proc) waitStep() {
	select {
	case <-p.stepCh:
	case <-p.stopCh:
		panic(procStopped{})
	}
}

// parkAs records the park condition and yields control back to the engine.
func (p *Proc) parkAs(st parkState) {
	p.park = st
	p.parkCh <- struct{}{}
	p.waitStep()
}

// OnRequest implements Handler by delegating to the installed responder.
func (p *Proc) OnRequest(ctx *Context, req Request) Payload {
	if p.onRequest == nil {
		return nil
	}
	return p.onRequest(p, req)
}

// OnResponse implements Handler: responses awaited by Exchange are stored for
// the blocked proc; all others go to the HandleResponses callback.
func (p *Proc) OnResponse(ctx *Context, resp Response) {
	// Exchange IDs are not exposed on Response, so blocked exchanges are
	// matched through the awaited set keyed by the internal exchange ID
	// recorded at initiation; see Exchange.
	if id := p.matchBlocked(resp); id != 0 {
		r := resp
		p.arrived[id] = &r
		return
	}
	if p.onResponse != nil {
		p.onResponse(p, resp)
	}
}

// matchBlocked finds the blocked exchange this response answers, if any.
// A response matches when it came back on the same edge index with the same
// initiation round as a registered blocking exchange.
func (p *Proc) matchBlocked(resp Response) uint64 {
	key := blockKey(resp.EdgeIndex, resp.InitiatedAt)
	if p.blockIDs[key] {
		delete(p.blockIDs, key)
		return key
	}
	return 0
}

func blockKey(edgeIdx, round int) uint64 {
	return uint64(edgeIdx)<<32 | uint64(uint32(round))
}

// Done implements Handler.
func (p *Proc) Done() bool { return p.finished }

// Stop shuts the proc goroutine down from outside the round engine. The
// live runtime calls it for crashed or shut-down nodes so a parked proc
// goroutine never outlives its node; it must be called with the proc parked
// (i.e. from the goroutine that drives the handler), and is idempotent.
func (p *Proc) Stop() { p.stop() }

// stop shuts the proc goroutine down and waits for it to exit. Called by
// Network.Close with the proc parked.
func (p *Proc) stop() {
	if !p.started {
		return
	}
	select {
	case <-p.doneCh:
		return
	default:
	}
	close(p.stopCh)
	<-p.doneCh
}

// ---- API available to the ProcFunc goroutine ----

// ID returns the node's identifier.
func (p *Proc) ID() graph.NodeID { return p.ctx.ID() }

// NHint returns the network-size upper bound known to nodes.
func (p *Proc) NHint() int { return p.ctx.NHint() }

// Round returns the current round.
func (p *Proc) Round() int { return p.ctx.Round() }

// Degree returns the node's degree.
func (p *Proc) Degree() int { return p.ctx.Degree() }

// Neighbor returns the idx-th incident edge view.
func (p *Proc) Neighbor(idx int) EdgeView { return p.ctx.Neighbor(idx) }

// Neighbors returns all incident edge views.
func (p *Proc) Neighbors() []EdgeView { return p.ctx.Neighbors() }

// Rand returns the node's deterministic random stream.
func (p *Proc) Rand() *rand.Rand { return p.ctx.Rand() }

// Yield parks the proc until the next round.
func (p *Proc) Yield() {
	p.parkAs(parkState{kind: parkYield})
}

// WaitRounds parks the proc for k rounds (k <= 0 behaves like Yield).
func (p *Proc) WaitRounds(k int) {
	if k <= 0 {
		p.Yield()
		return
	}
	p.nextWake = p.Round() + k
	p.parkAs(parkState{kind: parkWaitRound})
}

// Send initiates an exchange on edge idx without blocking for the response
// (which will be delivered to the HandleResponses callback). If this node
// already initiated an exchange this round, Send waits for the next round.
func (p *Proc) Send(idx int, payload Payload) {
	for {
		if _, err := p.ctx.Initiate(idx, payload); err == nil {
			return
		}
		p.Yield()
	}
}

// Exchange initiates an exchange on edge idx and blocks until its response
// returns, which takes exactly the edge latency in rounds. Responses to
// other in-flight Sends are still delivered to HandleResponses while blocked.
func (p *Proc) Exchange(idx int, payload Payload) Response {
	var initRound int
	for {
		initRound = p.Round()
		if _, err := p.ctx.Initiate(idx, payload); err == nil {
			break
		}
		p.Yield()
	}
	key := blockKey(idx, initRound)
	if p.blockIDs[key] {
		// Two blocking exchanges on the same edge in the same round are
		// impossible (one initiation per round); defend anyway.
		panic(fmt.Sprintf("sim: duplicate blocking exchange on edge %d round %d", idx, initRound))
	}
	p.blockIDs[key] = true
	p.awaitedID = key
	p.parkAs(parkState{kind: parkWaitResp})
	resp := p.arrived[key]
	delete(p.arrived, key)
	if resp == nil {
		panic(fmt.Sprintf("sim: resumed without response on edge %d round %d", idx, initRound))
	}
	return *resp
}
