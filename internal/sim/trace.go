package sim

import (
	"fmt"
	"io"

	"gossip/internal/graph"
)

// TraceKind classifies trace events.
type TraceKind uint8

const (
	// TraceInitiate: From initiated an exchange toward To.
	TraceInitiate TraceKind = iota + 1
	// TraceRequest: the request From→To was delivered.
	TraceRequest
	// TraceResponse: the response From→To (back to the initiator) was
	// delivered.
	TraceResponse
	// TraceCrash: node From fail-stopped.
	TraceCrash
)

// String names the kind.
func (k TraceKind) String() string {
	switch k {
	case TraceInitiate:
		return "initiate"
	case TraceRequest:
		return "request"
	case TraceResponse:
		return "response"
	case TraceCrash:
		return "crash"
	default:
		return fmt.Sprintf("TraceKind(%d)", uint8(k))
	}
}

// TraceEvent is one observable engine event.
type TraceEvent struct {
	Kind     TraceKind
	Round    int
	From, To graph.NodeID
	EdgeID   int
	Latency  int
}

// String renders the event compactly.
func (e TraceEvent) String() string {
	if e.Kind == TraceCrash {
		return fmt.Sprintf("r%d %s node=%d", e.Round, e.Kind, e.From)
	}
	return fmt.Sprintf("r%d %s %d->%d (edge %d, ℓ=%d)", e.Round, e.Kind, e.From, e.To, e.EdgeID, e.Latency)
}

// Tracer receives engine events. Installed via Config.Trace; called
// synchronously from the engine, so implementations must be fast and must
// not call back into the Network.
type Tracer func(ev TraceEvent)

// WriteTracer returns a Tracer that prints each event to w, one per line.
func WriteTracer(w io.Writer) Tracer {
	return func(ev TraceEvent) {
		fmt.Fprintln(w, ev.String())
	}
}

// Recorder collects events for inspection in tests and tools.
type Recorder struct {
	Events []TraceEvent
}

// Tracer returns the recording Tracer.
func (r *Recorder) Tracer() Tracer {
	return func(ev TraceEvent) { r.Events = append(r.Events, ev) }
}

// Count returns the number of recorded events of the given kind.
func (r *Recorder) Count(kind TraceKind) int {
	c := 0
	for _, ev := range r.Events {
		if ev.Kind == kind {
			c++
		}
	}
	return c
}

func (nw *Network) trace(ev TraceEvent) {
	if nw.cfg.Trace != nil {
		nw.cfg.Trace(ev)
	}
}
