package sim

import (
	"strings"
	"testing"

	"gossip/internal/graph"
)

func TestRecorderCapturesLifecycle(t *testing.T) {
	g := graph.New(2)
	g.MustAddEdge(0, 1, 4)
	var rec Recorder
	nw := NewNetwork(g, Config{Seed: 1, MaxRounds: 50, Trace: rec.Tracer()})
	a := &echoHandler{initiateAt: 1, edgeIdx: 0, payload: "x"}
	nw.SetHandler(0, a)
	nw.SetHandler(1, &echoHandler{})
	if _, err := nw.Run(func(nw *Network) bool { return len(a.gotResponses) > 0 }); err != nil {
		t.Fatal(err)
	}
	if got := rec.Count(TraceInitiate); got != 1 {
		t.Errorf("initiations traced = %d, want 1", got)
	}
	if got := rec.Count(TraceRequest); got != 1 {
		t.Errorf("requests traced = %d, want 1", got)
	}
	if got := rec.Count(TraceResponse); got != 1 {
		t.Errorf("responses traced = %d, want 1", got)
	}
	// Order: initiate (r1) then request (r3) then response (r5).
	if len(rec.Events) != 3 {
		t.Fatalf("events = %v", rec.Events)
	}
	if rec.Events[0].Kind != TraceInitiate || rec.Events[0].Round != 1 {
		t.Errorf("first event = %v", rec.Events[0])
	}
	if rec.Events[1].Kind != TraceRequest || rec.Events[1].Round != 3 {
		t.Errorf("second event = %v", rec.Events[1])
	}
	if rec.Events[2].Kind != TraceResponse || rec.Events[2].Round != 5 {
		t.Errorf("third event = %v", rec.Events[2])
	}
}

func TestTraceCrashEvent(t *testing.T) {
	g := graph.Path(2, 1)
	var rec Recorder
	nw := NewNetwork(g, Config{
		Seed: 1, MaxRounds: 10,
		Crashes: map[graph.NodeID]int{1: 2},
		Trace:   rec.Tracer(),
	})
	nw.SetHandler(0, &funcHandler{})
	nw.SetHandler(1, &funcHandler{})
	_, _ = nw.Run(func(nw *Network) bool { return nw.Round() >= 3 })
	if rec.Count(TraceCrash) != 1 {
		t.Errorf("crash events = %d, want 1", rec.Count(TraceCrash))
	}
}

func TestWriteTracer(t *testing.T) {
	var sb strings.Builder
	tr := WriteTracer(&sb)
	tr(TraceEvent{Kind: TraceInitiate, Round: 3, From: 1, To: 2, EdgeID: 7, Latency: 9})
	tr(TraceEvent{Kind: TraceCrash, Round: 4, From: 5, To: -1})
	out := sb.String()
	for _, want := range []string{"r3 initiate 1->2", "ℓ=9", "r4 crash node=5"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q:\n%s", want, out)
		}
	}
}

func TestTraceKindString(t *testing.T) {
	tests := []struct {
		kind TraceKind
		want string
	}{
		{kind: TraceInitiate, want: "initiate"},
		{kind: TraceRequest, want: "request"},
		{kind: TraceResponse, want: "response"},
		{kind: TraceCrash, want: "crash"},
		{kind: TraceKind(99), want: "TraceKind(99)"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", tt.kind, got, tt.want)
		}
	}
}
