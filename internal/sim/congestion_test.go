package sim

import (
	"testing"

	"gossip/internal/graph"
)

// TestBoundedInDegreeQueues verifies the MaxResponsesPerRound extension: a
// hub receiving several simultaneous requests answers them one per round in
// FIFO order, stretching the later responders' round trips.
func TestBoundedInDegreeQueues(t *testing.T) {
	const leaves = 4
	g := graph.Star(leaves+1, 1)
	nw := NewNetwork(g, Config{Seed: 1, MaxRounds: 60, MaxResponsesPerRound: 1})
	respAt := make([]int, leaves+1)
	handlers := make([]*echoHandler, leaves+1)
	for v := 0; v <= leaves; v++ {
		h := &echoHandler{initiateAt: -1}
		if v > 0 {
			h = &echoHandler{initiateAt: 1, edgeIdx: 0, payload: "probe"}
		}
		handlers[v] = h
		nw.SetHandler(v, h)
	}
	_, err := nw.Run(func(nw *Network) bool {
		done := true
		for v := 1; v <= leaves; v++ {
			if len(handlers[v].respRound) > 0 {
				if respAt[v] == 0 {
					respAt[v] = handlers[v].respRound[0]
				}
			} else {
				done = false
			}
		}
		return done
	})
	if err != nil {
		t.Fatal(err)
	}
	// All four requests arrive at the hub at round 2; with capacity 1 the
	// responses complete at rounds 2, 3, 4, 5 (one served per round).
	got := map[int]int{}
	for v := 1; v <= leaves; v++ {
		got[respAt[v]]++
	}
	for r := 2; r <= 5; r++ {
		if got[r] != 1 {
			t.Errorf("responses per round = %v, want exactly one in each of rounds 2..5", got)
			break
		}
	}
}

func TestUnboundedInDegreeIsParallel(t *testing.T) {
	const leaves = 4
	g := graph.Star(leaves+1, 1)
	nw := NewNetwork(g, Config{Seed: 1, MaxRounds: 20})
	handlers := make([]*echoHandler, leaves+1)
	for v := 0; v <= leaves; v++ {
		h := &echoHandler{initiateAt: -1}
		if v > 0 {
			h = &echoHandler{initiateAt: 1, edgeIdx: 0, payload: "probe"}
		}
		handlers[v] = h
		nw.SetHandler(v, h)
	}
	if _, err := nw.Run(func(nw *Network) bool {
		for v := 1; v <= leaves; v++ {
			if len(handlers[v].respRound) == 0 {
				return false
			}
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	for v := 1; v <= leaves; v++ {
		if handlers[v].respRound[0] != 2 {
			t.Errorf("leaf %d response at round %d, want 2 (unbounded hub)", v, handlers[v].respRound[0])
		}
	}
}
