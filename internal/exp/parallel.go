package exp

import (
	"gossip/internal/par"
)

// The experiment harness fans the independent (seed, scale-point) cells of
// each sweep across a worker pool. Every cell owns its seed (seed+trial) and
// its own Network, so cells never share mutable state; results are merged in
// index order, which keeps the rendered Table byte-identical to a sequential
// run. Determinism is per-cell, not per-schedule.
//
// The pool itself lives in internal/par (it is shared with the conductance
// ladder engine in internal/cut); these wrappers keep the historical exp API
// used by cmd/experiments and the tests.

// SetMaxWorkers sets the per-sweep worker cap (n <= 1 forces sequential
// execution) and returns the previous value. The cap is shared with every
// other par.Map user (notably cut.WeightedConductance).
func SetMaxWorkers(n int) int { return par.SetMaxWorkers(n) }

// MaxWorkers returns the current per-sweep worker cap.
func MaxWorkers() int { return par.MaxWorkers() }

// parMap evaluates fn for every index in [0, n) — concurrently when the
// worker cap allows — and returns the results in index order. See par.Map.
func parMap[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	return par.Map(n, fn)
}

// parTrials runs the per-trial measurement fn for trials independent cells
// and returns the measured values in trial order.
func parTrials(trials int, fn func(i int) (float64, error)) ([]float64, error) {
	return parMap(trials, fn)
}
