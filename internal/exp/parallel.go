package exp

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The experiment harness fans the independent (seed, scale-point) cells of
// each sweep across a worker pool. Every cell owns its seed (seed+trial) and
// its own Network, so cells never share mutable state; results are merged in
// index order, which keeps the rendered Table byte-identical to a sequential
// run. Determinism is per-cell, not per-schedule.

// maxWorkers caps the number of concurrent cells per parMap call.
// 1 disables parallelism entirely.
var maxWorkers atomic.Int64

func init() { maxWorkers.Store(int64(runtime.GOMAXPROCS(0))) }

// SetMaxWorkers sets the per-sweep worker cap (n <= 1 forces sequential
// execution) and returns the previous value.
func SetMaxWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	return int(maxWorkers.Swap(int64(n)))
}

// MaxWorkers returns the current per-sweep worker cap.
func MaxWorkers() int { return int(maxWorkers.Load()) }

// parMap evaluates fn for every index in [0, n) — concurrently when the
// worker cap allows — and returns the results in index order. On failure it
// returns the error of the lowest failing index, matching what a sequential
// loop would surface. Nested calls are safe: each call bounds only its own
// goroutines, so an outer sweep blocked in parMap never starves its inner
// trial loops.
func parMap[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	w := MaxWorkers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			var err error
			if out[i], err = fn(i); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// parTrials runs the per-trial measurement fn for trials independent cells
// and returns the measured values in trial order.
func parTrials(trials int, fn func(i int) (float64, error)) ([]float64, error) {
	return parMap(trials, fn)
}
