package exp

import (
	"fmt"

	"gossip/internal/core"
	"gossip/internal/graph"
	"gossip/internal/sim"
)

// LoadBalance measures the traffic distribution of push-pull against the
// tree broadcast: randomized gossip spreads work almost uniformly while the
// tree concentrates it on the root and high fan-out internal nodes — the
// systems reason anti-entropy deployments prefer gossip over trees even
// when trees are faster on paper.
func LoadBalance(scale Scale, seed uint64) (*Table, error) {
	fams := []family{
		{name: "star-48", g: graph.Star(48, 1)},
		{name: "ring-4x8-L3", g: graph.RingOfCliques(4, 8, 3)},
	}
	if scale == ScaleFull {
		fams = append(fams,
			family{name: "star-128", g: graph.Star(128, 1)},
			family{name: "grid-8x8-L2", g: graph.Grid(8, 8, 2)},
		)
	}
	t := NewTable("E-LOAD  per-node traffic: push-pull vs tree broadcast",
		"graph", "n", "pp max/mean load", "tree max/mean load", "tree hotspot share")
	t.Rows = make([][]string, 0, len(fams))
	type row struct {
		ppMax, ppMean, trMax, trMean, hotShare float64
	}
	rows, err := parMap(len(fams), func(fi int) (row, error) {
		f := fams[fi]
		pp, err := core.PushPull(f.g, 0, core.ModePushPull, sim.Config{Seed: seed})
		if err != nil {
			return row{}, fmt.Errorf("LOAD push-pull %s: %w", f.name, err)
		}
		tr, err := core.TreeBroadcast(f.g, 0, sim.Config{Seed: seed})
		if err != nil {
			return row{}, fmt.Errorf("LOAD tree %s: %w", f.name, err)
		}
		ppMax, ppMean := loadStats(pp.Loads)
		trMax, trMean := loadStats(tr.Loads)
		trTotal := 0.0
		for _, l := range tr.Loads {
			trTotal += float64(l.Total())
		}
		hotShare := 0.0
		if trTotal > 0 {
			hotShare = trMax / trTotal
		}
		return row{ppMax: ppMax, ppMean: ppMean, trMax: trMax, trMean: trMean, hotShare: hotShare}, nil
	})
	if err != nil {
		return nil, err
	}
	for fi, r := range rows {
		f := fams[fi]
		t.Add(f.name, f.g.N(), r.ppMax/r.ppMean, r.trMax/r.trMean, r.hotShare)
	}
	t.Note = "on (near-)regular topologies push-pull's load is almost uniform (max/mean ≈ 1) while the " +
		"tree concentrates traffic on internal nodes; on hub graphs both are degree-bound, the tree worse"
	return t, nil
}

func loadStats(loads []sim.NodeLoad) (maxV, mean float64) {
	if len(loads) == 0 {
		return 0, 1
	}
	for _, l := range loads {
		v := float64(l.Total())
		mean += v / float64(len(loads))
		if v > maxV {
			maxV = v
		}
	}
	if mean == 0 {
		mean = 1
	}
	return maxV, mean
}
