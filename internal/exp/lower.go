package exp

import (
	"fmt"
	"math"

	"gossip/internal/core"
	"gossip/internal/cut"
	"gossip/internal/graph"
	"gossip/internal/guess"
	"gossip/internal/sim"
)

// L4Guessing reproduces Lemma 4: the singleton guessing game costs Θ(m)
// rounds even for the adaptive (near-optimal) player. The table reports the
// mean round count per m and the ratio rounds/m, which should be roughly
// constant; the log-log slope of rounds vs m should be ≈ 1.
func L4Guessing(scale Scale, seed uint64) (*Table, error) {
	ms := []int{16, 32, 64, 128}
	trials := 20
	if scale == ScaleFull {
		ms = append(ms, 256, 512)
		trials = 40
	}
	t := NewTable("E-L4  Lemma 4: Guessing(2m, |T|=1) costs Θ(m) rounds",
		"m", "adaptive rounds", "adaptive/m", "random rounds", "random/m")
	t.Rows = make([][]string, 0, len(ms))
	type trial struct{ a, r float64 }
	rows, err := parMap(len(ms), func(mi int) ([]trial, error) {
		m := ms[mi]
		return parMap(trials, func(i int) (trial, error) {
			target := graph.SingletonTarget(m, seed+uint64(i))
			ra, err := guess.Play(m, target, guess.NewAdaptiveStrategy(seed+uint64(i)), 100*m)
			if err != nil {
				return trial{}, fmt.Errorf("L4 adaptive m=%d: %w", m, err)
			}
			rr, err := guess.Play(m, target, guess.NewRandomStrategy(seed+uint64(i)), 100*m)
			if err != nil {
				return trial{}, fmt.Errorf("L4 random m=%d: %w", m, err)
			}
			if !ra.Solved || !rr.Solved {
				return trial{}, fmt.Errorf("L4 m=%d trial %d unsolved", m, i)
			}
			return trial{a: float64(ra.Rounds), r: float64(rr.Rounds)}, nil
		})
	})
	if err != nil {
		return nil, err
	}
	var xs, ys []float64
	for mi, ts := range rows {
		m := ms[mi]
		ad, rd := make([]float64, trials), make([]float64, trials)
		for i, tr := range ts {
			ad[i], rd[i] = tr.a, tr.r
		}
		sa, sr := Summarize(ad), Summarize(rd)
		t.Add(m, sa.Mean, sa.Mean/float64(m), sr.Mean, sr.Mean/float64(m))
		xs = append(xs, float64(m))
		ys = append(ys, sa.Mean)
	}
	t.Note = fmt.Sprintf("log-log slope of adaptive rounds vs m = %.2f (Lemma 4 predicts 1.0)", LogLogSlope(xs, ys))
	return t, nil
}

// L5GuessingRandomP reproduces Lemma 5: against Random_p targets the
// adaptive player pays Θ(1/p) rounds while the oblivious random player (the
// push-pull analogue) pays Θ(log m / p).
func L5GuessingRandomP(scale Scale, seed uint64) (*Table, error) {
	m := 128
	ps := []float64{0.16, 0.08, 0.04}
	trials := 10
	if scale == ScaleFull {
		m = 256
		ps = append(ps, 0.02)
		trials = 20
	}
	t := NewTable("E-L5  Lemma 5: Guessing(2m, Random_p) round complexity",
		"p", "adaptive rounds", "adaptive·p", "random rounds", "random·p", "random·p/ln m")
	t.Rows = make([][]string, 0, len(ps))
	lnm := math.Log(float64(m))
	type trial struct{ a, r float64 }
	rows, err := parMap(len(ps), func(pi int) ([]trial, error) {
		p := ps[pi]
		return parMap(trials, func(i int) (trial, error) {
			target := graph.RandomTarget(m, p, seed+uint64(i))
			ra, err := guess.Play(m, target, guess.NewAdaptiveStrategy(seed+uint64(i)), int(2000/p))
			if err != nil {
				return trial{}, fmt.Errorf("L5 adaptive p=%g: %w", p, err)
			}
			rr, err := guess.Play(m, target, guess.NewRandomStrategy(seed+uint64(i)), int(2000/p))
			if err != nil {
				return trial{}, fmt.Errorf("L5 random p=%g: %w", p, err)
			}
			if !ra.Solved || !rr.Solved {
				return trial{}, fmt.Errorf("L5 p=%g trial %d unsolved", p, i)
			}
			return trial{a: float64(ra.Rounds), r: float64(rr.Rounds)}, nil
		})
	})
	if err != nil {
		return nil, err
	}
	for pi, ts := range rows {
		p := ps[pi]
		ad, rd := make([]float64, trials), make([]float64, trials)
		for i, tr := range ts {
			ad[i], rd[i] = tr.a, tr.r
		}
		sa, sr := Summarize(ad), Summarize(rd)
		t.Add(p, sa.Mean, sa.Mean*p, sr.Mean, sr.Mean*p, sr.Mean*p/lnm)
	}
	t.Note = "adaptive·p and random·p/ln m should each be roughly constant across rows"
	return t, nil
}

// T6DeltaLowerBound reproduces Theorem 6: on the gadget network H (O(1)
// weighted diameter, max degree Θ(Δ)) dissemination costs Ω(Δ) — the hidden
// fast edge must be found. Both push-pull and flooding pay linearly in Δ.
func T6DeltaLowerBound(scale Scale, seed uint64) (*Table, error) {
	deltas := []int{8, 16, 32}
	trials := 5
	if scale == ScaleFull {
		deltas = append(deltas, 64, 128)
		trials = 10
	}
	t := NewTable("E-T6  Theorem 6: Ω(Δ) on the gadget network H",
		"Δ", "n", "D", "push-pull rounds", "pp/Δ", "flood rounds", "flood/Δ")
	t.Rows = make([][]string, 0, len(deltas))
	type trial struct {
		pp, fl float64
		d      int
	}
	rows, err := parMap(len(deltas), func(di int) ([]trial, error) {
		delta := deltas[di]
		n := 2*delta + 8
		return parMap(trials, func(i int) (trial, error) {
			h, err := graph.NewTheoremSixNetwork(n, delta, seed+uint64(i))
			if err != nil {
				return trial{}, fmt.Errorf("T6 Δ=%d: %w", delta, err)
			}
			var d int
			if i == 0 {
				d = h.G.WeightedDiameter()
			}
			pp, err := core.PushPull(h.G, 0, core.ModePushPull, sim.Config{Seed: seed + uint64(i)})
			if err != nil {
				return trial{}, fmt.Errorf("T6 push-pull Δ=%d: %w", delta, err)
			}
			fl, err := core.Flood(h.G, 0, sim.Config{Seed: seed + uint64(i)})
			if err != nil {
				return trial{}, fmt.Errorf("T6 flood Δ=%d: %w", delta, err)
			}
			return trial{pp: float64(pp.Metrics.Rounds), fl: float64(fl.Metrics.Rounds), d: d}, nil
		})
	})
	if err != nil {
		return nil, err
	}
	var xs, ys []float64
	for di, ts := range rows {
		delta := deltas[di]
		n := 2*delta + 8
		pps, fls := make([]float64, trials), make([]float64, trials)
		for i, tr := range ts {
			pps[i], fls[i] = tr.pp, tr.fl
		}
		sp, sf := Summarize(pps), Summarize(fls)
		t.Add(delta, n, ts[0].d, sp.Mean, sp.Mean/float64(delta), sf.Mean, sf.Mean/float64(delta))
		xs = append(xs, float64(delta))
		ys = append(ys, sp.Mean)
	}
	// Fit the asymptotic regime (larger Δ): small instances are dominated by
	// the constant detour through latency-n edges.
	half := len(xs) / 2
	t.Note = fmt.Sprintf("log-log slope of push-pull rounds vs Δ (upper half) = %.2f; flood/Δ constant — "+
		"both pay Ω(Δ) despite D=O(1) (Theorem 6)", LogLogSlope(xs[half:], ys[half:]))
	return t, nil
}

// T7Conductance reproduces Theorem 7: on G(Random_φ) with fast latency ℓ,
// local broadcast by push-pull costs Ω(log n/φ + ℓ) while the network has
// weighted diameter O(ℓ) and weighted conductance Θ(φ).
func T7Conductance(scale Scale, seed uint64) (*Table, error) {
	n := 48
	phis := []float64{0.3, 0.15, 0.08}
	ell := 4
	trials := 5
	if scale == ScaleFull {
		// Theorem 7 requires φ >= Ω(log n/n) ≈ 0.05 at n=96 for the whp
		// diameter claim; stay just above it.
		n = 96
		phis = append(phis, 0.05)
		trials = 10
	}
	t := NewTable("E-T7  Theorem 7: Ω(log n/φ + ℓ) on G(Random_φ), D = O(ℓ)",
		"φ", "2n", "D (O(ℓ), ℓ="+fmt.Sprint(ell)+")", "measured φ_ℓ", "push-pull rounds", "rounds·φ/ln n")
	t.Rows = make([][]string, 0, len(phis))
	lnn := math.Log(float64(2 * n))
	type trial struct {
		rounds   float64
		d        int
		measured float64
	}
	rows, err := parMap(len(phis), func(pi int) ([]trial, error) {
		phi := phis[pi]
		return parMap(trials, func(i int) (trial, error) {
			tn, err := graph.NewTheoremSevenNetwork(n, phi, ell, seed+uint64(i))
			if err != nil {
				return trial{}, fmt.Errorf("T7 φ=%g: %w", phi, err)
			}
			var tr trial
			if i == 0 {
				tr.d = tn.G.WeightedDiameterApprox()
				tr.measured = cut.PhiHeuristic(tn.G, ell, seed)
			}
			pp, err := core.PushPull(tn.G, 0, core.ModePushPull, sim.Config{Seed: seed + uint64(i)})
			if err != nil {
				return trial{}, fmt.Errorf("T7 push-pull φ=%g: %w", phi, err)
			}
			tr.rounds = float64(pp.Metrics.Rounds)
			return tr, nil
		})
	})
	if err != nil {
		return nil, err
	}
	for pi, ts := range rows {
		phi := phis[pi]
		rounds := make([]float64, trials)
		for i, tr := range ts {
			rounds[i] = tr.rounds
		}
		s := Summarize(rounds)
		t.Add(phi, 2*n, ts[0].d, ts[0].measured, s.Mean, s.Mean*phi/lnn)
	}
	t.Note = "rounds·φ/ln n roughly constant => rounds = Θ(log n/φ); measured φ_ℓ tracks the construction's φ"
	return t, nil
}

// T8TradeOff reproduces Theorem 8: on the layered ring network, dissemination
// costs Ω(min(Δ+D, ℓ/φ)). Sweeping the cross-edge latency ℓ shows rounds
// growing linearly in ℓ until the crossover at ℓ ≈ Θ(Δ), after which finding
// the hidden fast edges (Ω(Δ) per layer) is the cheaper strategy and the
// curve plateaus.
func T8TradeOff(scale Scale, seed uint64) (*Table, error) {
	n, alpha := 32, 0.25
	ells := []int{1, 2, 4, 8, 16, 32}
	trials := 5
	if scale == ScaleFull {
		n, alpha = 64, 0.25
		ells = []int{1, 2, 4, 8, 16, 32, 64, 128}
		trials = 8
	}
	t := NewTable("E-T8  Theorem 8: Ω(min(Δ+D, ℓ/φ)) trade-off on the layered ring",
		"ℓ", "nodes", "Δ", "D", "push-pull rounds", "flood rounds", "min(Δ+D, ℓ/α)")
	t.Rows = make([][]string, 0, len(ells))
	type trial struct {
		pp, fl        float64
		deg, d, nodes int
	}
	rows, err := parMap(len(ells), func(ei int) ([]trial, error) {
		ell := ells[ei]
		return parMap(trials, func(i int) (trial, error) {
			rn, err := graph.NewRingNetwork(n, alpha, ell, seed+uint64(i))
			if err != nil {
				return trial{}, fmt.Errorf("T8 ℓ=%d: %w", ell, err)
			}
			var tr trial
			if i == 0 {
				tr.deg = rn.G.MaxDegree()
				tr.nodes = rn.G.N()
				tr.d = rn.K / 2
			}
			pp, err := core.PushPull(rn.G, 0, core.ModePushPull, sim.Config{Seed: seed + uint64(i)})
			if err != nil {
				return trial{}, fmt.Errorf("T8 push-pull ℓ=%d: %w", ell, err)
			}
			fl, err := core.Flood(rn.G, 0, sim.Config{Seed: seed + uint64(i)})
			if err != nil {
				return trial{}, fmt.Errorf("T8 flood ℓ=%d: %w", ell, err)
			}
			tr.pp, tr.fl = float64(pp.Metrics.Rounds), float64(fl.Metrics.Rounds)
			return tr, nil
		})
	})
	if err != nil {
		return nil, err
	}
	for ei, ts := range rows {
		ell := ells[ei]
		pps, fls := make([]float64, trials), make([]float64, trials)
		for i, tr := range ts {
			pps[i], fls[i] = tr.pp, tr.fl
		}
		deg, d, nodes := ts[0].deg, ts[0].d, ts[0].nodes
		bound := float64(deg + d)
		if alt := float64(ell) / alpha; alt < bound {
			bound = alt
		}
		t.Add(ell, nodes, deg, d, Summarize(pps).Mean, Summarize(fls).Mean, bound)
	}
	t.Note = "rounds grow with ℓ then plateau near the Δ+D regime — the min(Δ+D, ℓ/φ) crossover"
	return t, nil
}

// L9RingConductance reproduces Lemmas 9–11: on the Theorem 8 ring network,
// the half cut C has φ_ℓ(C) = α (Lemma 9), the graph conductance is Θ(α)
// (Lemma 10), and the critical latency is ℓ (Lemma 11).
func L9RingConductance(scale Scale, seed uint64) (*Table, error) {
	type cfg struct {
		n     int
		alpha float64
		ell   int
	}
	cfgs := []cfg{{n: 32, alpha: 0.25, ell: 4}, {n: 64, alpha: 0.125, ell: 4}}
	if scale == ScaleFull {
		cfgs = append(cfgs, cfg{n: 64, alpha: 0.25, ell: 8}, cfg{n: 128, alpha: 0.125, ell: 8})
	}
	t := NewTable("E-L9/L10/L11  Ring network conductance: φ_ℓ(C)=α, φ_ℓ=Θ(α), ℓ*=ℓ",
		"α", "ℓ", "nodes", "φ_ℓ(C) (Lemma 9 ≈ α)", "heuristic φ_ℓ (Θ(α))", "ℓ* (Lemma 11 = ℓ)")
	t.Rows = make([][]string, 0, len(cfgs))
	type row struct {
		nodes   int
		phiCut  float64
		heur    float64
		ellStar int
	}
	rows, err := parMap(len(cfgs), func(ci int) (row, error) {
		c := cfgs[ci]
		rn, err := graph.NewRingNetwork(c.n, c.alpha, c.ell, seed)
		if err != nil {
			return row{}, fmt.Errorf("L9 α=%g: %w", c.alpha, err)
		}
		phiCut, err := cut.PhiCut(rn.G, rn.HalfCut(), c.ell)
		if err != nil {
			return row{}, fmt.Errorf("L9 cut: %w", err)
		}
		heur := cut.PhiHeuristic(rn.G, c.ell, seed)
		wc, err := cut.WeightedConductance(rn.G, seed)
		if err != nil {
			return row{}, fmt.Errorf("L11: %w", err)
		}
		return row{nodes: rn.G.N(), phiCut: phiCut, heur: heur, ellStar: wc.EllStar}, nil
	})
	if err != nil {
		return nil, err
	}
	for ci, r := range rows {
		c := cfgs[ci]
		t.Add(c.alpha, c.ell, r.nodes, r.phiCut, r.heur, r.ellStar)
	}
	return t, nil
}
