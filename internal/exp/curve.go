package exp

import (
	"fmt"
	"sort"

	"gossip/internal/core"
	"gossip/internal/graph"
	"gossip/internal/sim"
)

// InformedCurve measures *where* push-pull spends its time: the rounds at
// which 25/50/75/95/100% of nodes are informed. On well-connected graphs
// the curve is a compact S (exponential growth then saturation); on
// low-conductance graphs most of the time is spent waiting at the sparse
// cuts — the mechanism behind Theorem 12's φ* dependence.
func InformedCurve(scale Scale, seed uint64) (*Table, error) {
	fams := []family{
		{name: "clique-64", g: graph.Clique(64, 1)},
		{name: "ring-8x8-L4", g: graph.RingOfCliques(8, 8, 4)},
		{name: "dumbbell-32-L16", g: graph.Dumbbell(32, 16)},
	}
	trials := 5
	if scale == ScaleFull {
		fams = append(fams,
			family{name: "ring-16x8-L8", g: graph.RingOfCliques(16, 8, 8)},
			family{name: "grid-8x8-L2", g: graph.Grid(8, 8, 2)},
		)
		trials = 10
	}
	t := NewTable("E-CURVE  push-pull informed-fraction milestones (mean rounds)",
		"graph", "n", "25%", "50%", "75%", "95%", "100%", "tail share")
	quantiles := []float64{0.25, 0.50, 0.75, 0.95, 1.00}
	t.Rows = make([][]string, 0, len(fams))
	rows, err := parMap(len(fams), func(fi int) ([][]int, error) {
		f := fams[fi]
		return parMap(trials, func(i int) ([]int, error) {
			res, err := core.PushPull(f.g, 0, core.ModePushPull, sim.Config{Seed: seed + uint64(i)})
			if err != nil {
				return nil, fmt.Errorf("CURVE %s: %w", f.name, err)
			}
			return milestones(res.InformedAt, quantiles), nil
		})
	})
	if err != nil {
		return nil, err
	}
	for fi, trialMs := range rows {
		f := fams[fi]
		// Sum in trial order so the floating-point result matches a
		// sequential run bit-for-bit.
		sums := make([]float64, len(quantiles))
		for _, ms := range trialMs {
			for j, m := range ms {
				sums[j] += float64(m) / float64(trials)
			}
		}
		// Tail share: fraction of the total time spent informing the last 25%.
		tail := (sums[4] - sums[2]) / sums[4]
		t.Add(f.name, f.g.N(), sums[0], sums[1], sums[2], sums[3], sums[4], tail)
	}
	t.Note = "low-conductance families spend most rounds on the last quarter (crossing sparse cuts); " +
		"cliques saturate almost immediately"
	return t, nil
}

// milestones returns, for each quantile q, the first round by which at
// least ⌈q·n⌉ nodes were informed.
func milestones(informedAt []int, quantiles []float64) []int {
	times := append([]int(nil), informedAt...)
	sort.Ints(times)
	out := make([]int, len(quantiles))
	n := len(times)
	for i, q := range quantiles {
		idx := int(q*float64(n)+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= n {
			idx = n - 1
		}
		out[i] = times[idx]
	}
	return out
}
