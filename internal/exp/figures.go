package exp

import (
	"fmt"

	"gossip/internal/cut"
	"gossip/internal/graph"
)

// Figure1 regenerates Figure 1 as data: the structural parameters of the
// guessing-game gadgets G(P) and G_sym(P) across sizes and predicates —
// node/edge counts, fast-edge counts, degree, and weighted diameter.
func Figure1(scale Scale, seed uint64) (*Table, error) {
	ms := []int{8, 16}
	if scale == ScaleFull {
		ms = append(ms, 32, 64)
	}
	t := NewTable("E-F1  Figure 1: guessing-game gadgets G(P) and G_sym(P)",
		"m", "variant", "predicate", "nodes", "edges", "fast cross", "Δ", "D")
	t.Rows = make([][]string, 0, 4*len(ms))
	type row struct {
		variant, pred                  string
		nodes, edges, fast, maxDeg, di int
	}
	rows, err := parMap(len(ms), func(mi int) ([]row, error) {
		m := ms[mi]
		var out []row
		for _, sym := range []bool{false, true} {
			variant := "G(P)"
			if sym {
				variant = "G_sym(P)"
			}
			for _, pred := range []struct {
				name   string
				target []graph.Pair
			}{
				{name: "|T|=1", target: graph.SingletonTarget(m, seed)},
				{name: "Random_0.1", target: graph.RandomTarget(m, 0.1, seed)},
			} {
				gd, err := graph.NewGadget(m, pred.target, sym, 2*m)
				if err != nil {
					return nil, fmt.Errorf("F1 m=%d: %w", m, err)
				}
				out = append(out, row{variant: variant, pred: pred.name,
					nodes: gd.G.N(), edges: gd.G.M(), fast: len(pred.target),
					maxDeg: gd.G.MaxDegree(), di: gd.G.WeightedDiameter()})
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for mi, out := range rows {
		m := ms[mi]
		for _, r := range out {
			t.Add(m, r.variant, r.pred, r.nodes, r.edges, r.fast, r.maxDeg, r.di)
		}
	}
	t.Note = "m² cross edges; fast = target set; slow latency 2m; G_sym adds the R clique " +
		"(needed for D=O(1) with singleton targets)"
	return t, nil
}

// Figure2 regenerates Figure 2 as data: the layered ring of Theorem 8 —
// layer geometry, regularity (Observation 23), hidden fast edges, diameter
// D = Θ(1/α), and the Lemma 9 half-cut conductance.
func Figure2(scale Scale, seed uint64) (*Table, error) {
	type cfg struct {
		n     int
		alpha float64
		ell   int
	}
	cfgs := []cfg{{n: 32, alpha: 0.25, ell: 4}, {n: 64, alpha: 0.125, ell: 4}}
	if scale == ScaleFull {
		cfgs = append(cfgs, cfg{n: 64, alpha: 0.25, ell: 16}, cfg{n: 128, alpha: 0.0625, ell: 8})
	}
	t := NewTable("E-F2  Figure 2: the Theorem 8 layered ring",
		"α", "ℓ", "layers k", "layer size s", "nodes", "degree (3s-1)", "fast edges", "D", "1/α", "φ_ℓ(C)")
	t.Rows = make([][]string, 0, len(cfgs))
	type row struct {
		k, s, nodes, deg, fast, di int
		phiC                       float64
	}
	rows, err := parMap(len(cfgs), func(ci int) (row, error) {
		c := cfgs[ci]
		rn, err := graph.NewRingNetwork(c.n, c.alpha, c.ell, seed)
		if err != nil {
			return row{}, fmt.Errorf("F2 α=%g: %w", c.alpha, err)
		}
		phiC, err := cut.PhiCut(rn.G, rn.HalfCut(), c.ell)
		if err != nil {
			return row{}, fmt.Errorf("F2 cut: %w", err)
		}
		return row{k: rn.K, s: rn.S, nodes: rn.G.N(), deg: rn.G.Degree(0),
			fast: len(rn.Fast), di: rn.G.WeightedDiameter(), phiC: phiC}, nil
	})
	if err != nil {
		return nil, err
	}
	for ci, r := range rows {
		c := cfgs[ci]
		t.Add(c.alpha, c.ell, r.k, r.s, r.nodes, r.deg, r.fast, r.di, 1/c.alpha, r.phiC)
	}
	t.Note = "every node has degree 3s−1 (Observation 23); one hidden fast edge per layer pair; " +
		"D tracks 1/α; φ_ℓ(C) ≈ α (Lemma 9)"
	return t, nil
}
