package exp

import (
	"fmt"
	"math"

	"gossip/internal/core"
	"gossip/internal/cut"
	"gossip/internal/graph"
	"gossip/internal/sim"
	"gossip/internal/spanner"
)

// family is a named graph family instance with its analytically relevant
// parameters precomputed.
type family struct {
	name string
	g    *graph.Graph
}

// T12PushPull reproduces Theorem 12: push-pull completes in
// O((ℓ*/φ*)·log n) rounds. Across families with very different ℓ*/φ*, the
// ratio rounds / ((ℓ*/φ*)·ln n) stays bounded and the log-log slope of
// rounds vs the driver term is ≈ 1.
func T12PushPull(scale Scale, seed uint64) (*Table, error) {
	fams := []family{
		{name: "clique-64", g: graph.Clique(64, 1)},
		{name: "ring-4x8-L2", g: graph.RingOfCliques(4, 8, 2)},
		{name: "ring-8x8-L4", g: graph.RingOfCliques(8, 8, 4)},
		{name: "dumbbell-16-L8", g: graph.Dumbbell(16, 8)},
	}
	trials := 5
	if scale == ScaleFull {
		fams = append(fams,
			family{name: "ring-16x8-L8", g: graph.RingOfCliques(16, 8, 8)},
			family{name: "dumbbell-32-L16", g: graph.Dumbbell(32, 16)},
			family{name: "gnp-128-p0.06", g: graph.GNP(128, 0.06, 1, true, seed)},
		)
		trials = 10
	}
	t := NewTable("E-T12  Theorem 12: push-pull = O((ℓ*/φ*)·log n)",
		"graph", "n", "φ*", "ℓ*", "(ℓ*/φ*)ln n", "rounds", "rounds/driver")
	t.Rows = make([][]string, 0, len(fams))
	type row struct {
		wc     cut.Result
		driver float64
		s      Stats
	}
	rows, err := parMap(len(fams), func(fi int) (row, error) {
		f := fams[fi]
		wc, err := cut.WeightedConductance(f.g, seed)
		if err != nil {
			return row{}, fmt.Errorf("T12 %s conductance: %w", f.name, err)
		}
		if wc.PhiStar <= 0 {
			return row{}, fmt.Errorf("T12 %s: φ* = 0", f.name)
		}
		driver := float64(wc.EllStar) / wc.PhiStar * math.Log(float64(f.g.N()))
		rounds, err := parTrials(trials, func(i int) (float64, error) {
			pp, err := core.PushPull(f.g, 0, core.ModePushPull, sim.Config{Seed: seed + uint64(i)})
			if err != nil {
				return 0, fmt.Errorf("T12 %s: %w", f.name, err)
			}
			return float64(pp.Metrics.Rounds), nil
		})
		if err != nil {
			return row{}, err
		}
		return row{wc: wc, driver: driver, s: Summarize(rounds)}, nil
	})
	if err != nil {
		return nil, err
	}
	var xs, ys []float64
	for fi, r := range rows {
		f := fams[fi]
		t.Add(f.name, f.g.N(), r.wc.PhiStar, r.wc.EllStar, r.driver, r.s.Mean, r.s.Mean/r.driver)
		xs = append(xs, r.driver)
		ys = append(ys, r.s.Mean)
	}
	t.Note = fmt.Sprintf("rounds/driver <= 1 on every row: the O((ℓ*/φ*)·log n) bound holds "+
		"(log-log slope vs driver = %.2f; tightness of the bound is the E-T7 experiment)", LogLogSlope(xs, ys))
	return t, nil
}

// T14Spanner reproduces Lemma 13 / Theorem 14: at k = log n the Baswana–Sen
// construction yields O(n log n) edges, O(log n) out-degree, and stretch
// <= 2k−1.
func T14Spanner(scale Scale, seed uint64) (*Table, error) {
	ns := []int{32, 64, 128}
	if scale == ScaleFull {
		ns = append(ns, 256)
	}
	t := NewTable("E-T14  Lemma 13/Theorem 14: spanner size, out-degree, stretch at k=log n",
		"n", "k", "edges", "edges/(n·log n)", "max out-deg", "outdeg/log n", "stretch", "2k-1")
	t.Rows = make([][]string, 0, len(ns))
	type row struct {
		k, size, outDeg int
		stretch         float64
	}
	rows, err := parMap(len(ns), func(ni int) (row, error) {
		n := ns[ni]
		g := graph.GNP(n, math.Min(1, 8*math.Log(float64(n))/float64(n)), 1, true, seed)
		k := int(math.Ceil(math.Log2(float64(n))))
		sp, err := spanner.Build(g, k, n, seed)
		if err != nil {
			return row{}, fmt.Errorf("T14 n=%d: %w", n, err)
		}
		return row{k: k, size: sp.Size(), outDeg: sp.MaxOutDegree(), stretch: spanner.Stretch(g, sp)}, nil
	})
	if err != nil {
		return nil, err
	}
	for ni, r := range rows {
		n := ns[ni]
		lg := math.Log2(float64(n))
		t.Add(n, r.k, r.size, float64(r.size)/(float64(n)*lg),
			r.outDeg, float64(r.outDeg)/lg, r.stretch, 2*r.k-1)
	}
	t.Note = "edges/(n log n) and outdeg/log n bounded; stretch within 2k-1"
	return t, nil
}

// L15RRBroadcast reproduces Lemma 15 / Corollary 16: RR Broadcast over the
// oriented spanner completes all-to-all dissemination within
// kRR·Δout + kRR rounds, i.e. O(D log² n).
func L15RRBroadcast(scale Scale, seed uint64) (*Table, error) {
	fams := []family{
		{name: "clique-32", g: graph.Clique(32, 1)},
		{name: "ring-4x6-L3", g: graph.RingOfCliques(4, 6, 3)},
		{name: "grid-6x6-L2", g: graph.Grid(6, 6, 2)},
	}
	if scale == ScaleFull {
		fams = append(fams,
			family{name: "ring-8x8-L4", g: graph.RingOfCliques(8, 8, 4)},
			family{name: "grid-8x8-L2", g: graph.Grid(8, 8, 2)},
		)
	}
	t := NewTable("E-L15  Lemma 15/Corollary 16: RR Broadcast over the oriented spanner",
		"graph", "n", "D", "Δout", "completed@", "Lemma 15 bound", "D·log²n", "done/bound")
	t.Rows = make([][]string, 0, len(fams))
	type row struct {
		d, outDeg, done int
	}
	rows, err := parMap(len(fams), func(fi int) (row, error) {
		f := fams[fi]
		d := f.g.WeightedDiameter()
		res, err := core.RRBroadcast(f.g, d, 0, sim.Config{Seed: seed})
		if err != nil {
			return row{}, fmt.Errorf("L15 %s: %w", f.name, err)
		}
		if !res.Completed {
			return row{}, fmt.Errorf("L15 %s: dissemination incomplete", f.name)
		}
		return row{d: d, outDeg: res.MaxOutDegree, done: res.RoundsToComplete}, nil
	})
	if err != nil {
		return nil, err
	}
	for fi, r := range rows {
		f := fams[fi]
		ks := int(math.Ceil(math.Log2(float64(f.g.N()))))
		kRR := (2*ks - 1) * r.d
		bound := kRR*r.outDeg + kRR
		lg := math.Log2(float64(f.g.N()))
		t.Add(f.name, f.g.N(), r.d, r.outDeg, r.done, bound,
			float64(r.d)*lg*lg, float64(r.done)/float64(bound))
	}
	t.Note = "done/bound <= 1 everywhere: completion within the Lemma 15 schedule"
	return t, nil
}

// L17EID reproduces Lemma 17: EID with known diameter solves all-to-all
// dissemination in O(D log³ n); the ratio rounds/(D·log³ n) stays bounded as
// D grows.
func L17EID(scale Scale, seed uint64) (*Table, error) {
	fams := []family{
		{name: "ring-2x6-L2", g: graph.RingOfCliques(2, 6, 2)},
		{name: "ring-4x6-L2", g: graph.RingOfCliques(4, 6, 2)},
	}
	if scale == ScaleFull {
		fams = append(fams,
			family{name: "ring-8x6-L2", g: graph.RingOfCliques(8, 6, 2)},
			family{name: "ring-12x6-L2", g: graph.RingOfCliques(12, 6, 2)},
		)
	}
	t := NewTable("E-L17  Lemma 17: EID (known D) = O(D log³ n)",
		"graph", "n", "D", "rounds", "D·log³n", "rounds/(D·log³n)")
	t.Rows = make([][]string, 0, len(fams))
	type row struct {
		d, rounds int
	}
	rows, err := parMap(len(fams), func(fi int) (row, error) {
		f := fams[fi]
		d := f.g.WeightedDiameter()
		res, err := core.EID(f.g, d, sim.Config{Seed: seed})
		if err != nil {
			return row{}, fmt.Errorf("L17 %s: %w", f.name, err)
		}
		if !res.Completed {
			return row{}, fmt.Errorf("L17 %s: dissemination incomplete", f.name)
		}
		return row{d: d, rounds: res.Metrics.Rounds}, nil
	})
	if err != nil {
		return nil, err
	}
	var xs, ys []float64
	for fi, r := range rows {
		f := fams[fi]
		lg := math.Log2(float64(f.g.N()))
		driver := float64(r.d) * lg * lg * lg
		t.Add(f.name, f.g.N(), r.d, r.rounds, driver, float64(r.rounds)/driver)
		xs = append(xs, driver)
		ys = append(ys, float64(r.rounds))
	}
	t.Note = fmt.Sprintf("rounds/(D·log³n) bounded (non-increasing) — log-log slope of rounds vs the "+
		"driver D·log³n = %.2f (Lemma 17 predicts <= 1)", LogLogSlope(xs, ys))
	return t, nil
}

// T19GeneralEID reproduces Theorem 19 and Lemma 18: guess-and-double EID
// with termination detection completes in O(D log³ n) with every node
// terminating in the same round.
func T19GeneralEID(scale Scale, seed uint64) (*Table, error) {
	fams := []family{
		{name: "clique-12", g: graph.Clique(12, 1)},
		{name: "ring-3x5-L3", g: graph.RingOfCliques(3, 5, 3)},
	}
	if scale == ScaleFull {
		fams = append(fams,
			family{name: "ring-6x5-L3", g: graph.RingOfCliques(6, 5, 3)},
			family{name: "grid-5x5-L2", g: graph.Grid(5, 5, 2)},
		)
	}
	t := NewTable("E-T19  Theorem 19/Lemma 18: General EID (unknown D)",
		"graph", "n", "D", "rounds", "final estimate", "same-round termination")
	t.Rows = make([][]string, 0, len(fams))
	type row struct {
		d, rounds, estimate int
		same                bool
	}
	rows, err := parMap(len(fams), func(fi int) (row, error) {
		f := fams[fi]
		d := f.g.WeightedDiameter()
		res, err := core.GeneralEID(f.g, sim.Config{Seed: seed})
		if err != nil {
			return row{}, fmt.Errorf("T19 %s: %w", f.name, err)
		}
		if !res.Completed {
			return row{}, fmt.Errorf("T19 %s: dissemination incomplete", f.name)
		}
		same := true
		for _, r := range res.TerminatedAt {
			if r != res.TerminatedAt[0] {
				same = false
			}
		}
		return row{d: d, rounds: res.Metrics.Rounds, estimate: res.FinalEstimate, same: same}, nil
	})
	if err != nil {
		return nil, err
	}
	for fi, r := range rows {
		f := fams[fi]
		t.Add(f.name, f.g.N(), r.d, r.rounds, r.estimate, r.same)
	}
	t.Note = "Lemma 18 requires same-round termination = true on every row"
	return t, nil
}

// T20Unified reproduces Theorem 20: the unified algorithm achieves
// min((D+Δ)·log³n, (ℓ*/φ*)·log n) by interleaving. The table reports both
// components' measured times, the predicted driver terms, and the winner. At
// laptop scale push-pull's constants dominate; the predicted-driver columns
// show where the asymptotic crossover lies.
func T20Unified(scale Scale, seed uint64) (*Table, error) {
	fams := []family{
		{name: "clique-24", g: graph.Clique(24, 1)},
		{name: "ring-4x6-L2", g: graph.RingOfCliques(4, 6, 2)},
	}
	if scale == ScaleFull {
		fams = append(fams,
			family{name: "dumbbell-12-L6", g: graph.Dumbbell(12, 6)},
			family{name: "grid-5x5-L2", g: graph.Grid(5, 5, 2)},
		)
	}
	t := NewTable("E-T20  Theorem 20: unified = 2·min(push-pull, spanner algorithm)",
		"graph", "n", "pp rounds", "spanner rounds", "unified rounds", "winner",
		"(ℓ*/φ*)ln n", "D·log³n")
	t.Rows = make([][]string, 0, len(fams))
	type row struct {
		res core.UnifiedResult
		wc  cut.Result
		d   int
	}
	rows, err := parMap(len(fams), func(fi int) (row, error) {
		f := fams[fi]
		res, err := core.Unified(f.g, 0, true, sim.Config{Seed: seed})
		if err != nil {
			return row{}, fmt.Errorf("T20 %s: %w", f.name, err)
		}
		wc, err := cut.WeightedConductance(f.g, seed)
		if err != nil {
			return row{}, fmt.Errorf("T20 %s conductance: %w", f.name, err)
		}
		return row{res: res, wc: wc, d: f.g.WeightedDiameter()}, nil
	})
	if err != nil {
		return nil, err
	}
	for fi, r := range rows {
		f := fams[fi]
		lg := math.Log2(float64(f.g.N()))
		ppDriver := math.Inf(1)
		if r.wc.PhiStar > 0 {
			ppDriver = float64(r.wc.EllStar) / r.wc.PhiStar * math.Log(float64(f.g.N()))
		}
		t.Add(f.name, f.g.N(), r.res.PushPull.Metrics.Rounds, r.res.Spanner.Metrics.Rounds,
			r.res.Rounds, r.res.Winner, ppDriver, float64(r.d)*lg*lg*lg)
	}
	t.Note = "unified = 2·min of the two components (deterministic 1:1 interleaving)"
	return t, nil
}

// L24PathDiscovery reproduces Lemmas 24–26: the T(k) schedule solves
// all-to-all dissemination; Path Discovery handles unknown D in
// O(D log² n log D) without knowing n.
func L24PathDiscovery(scale Scale, seed uint64) (*Table, error) {
	fams := []family{
		{name: "clique-10", g: graph.Clique(10, 1)},
		{name: "dumbbell-5-L3", g: graph.Dumbbell(5, 3)},
	}
	if scale == ScaleFull {
		fams = append(fams,
			family{name: "ring-4x5-L2", g: graph.RingOfCliques(4, 5, 2)},
			family{name: "grid-4x4-L2", g: graph.Grid(4, 4, 2)},
		)
	}
	t := NewTable("E-L24  Lemmas 24-26: T(D) and Path Discovery",
		"graph", "n", "D", "T(D) rounds", "PathDiscovery rounds", "D·log²n·logD", "same-round term")
	t.Rows = make([][]string, 0, len(fams))
	type row struct {
		d        int
		tsRounds int
		pdRounds int
		same     bool
	}
	rows, err := parMap(len(fams), func(fi int) (row, error) {
		f := fams[fi]
		d := f.g.WeightedDiameter()
		ts, err := core.TSequence(f.g, d, sim.Config{Seed: seed})
		if err != nil {
			return row{}, fmt.Errorf("L24 T(D) %s: %w", f.name, err)
		}
		if !ts.Completed {
			return row{}, fmt.Errorf("L24 %s: T(D) incomplete", f.name)
		}
		pd, err := core.PathDiscovery(f.g, sim.Config{Seed: seed})
		if err != nil {
			return row{}, fmt.Errorf("L24 PD %s: %w", f.name, err)
		}
		if !pd.Completed {
			return row{}, fmt.Errorf("L24 %s: Path Discovery incomplete", f.name)
		}
		same := true
		for _, r := range pd.TerminatedAt {
			if r != pd.TerminatedAt[0] {
				same = false
			}
		}
		return row{d: d, tsRounds: ts.Metrics.Rounds, pdRounds: pd.Metrics.Rounds, same: same}, nil
	})
	if err != nil {
		return nil, err
	}
	for fi, r := range rows {
		f := fams[fi]
		lg := math.Log2(float64(f.g.N()))
		driver := float64(r.d) * lg * lg * math.Max(1, math.Log2(float64(r.d)+1))
		t.Add(f.name, f.g.N(), r.d, r.tsRounds, r.pdRounds, driver, r.same)
	}
	return t, nil
}

// DiscoveryEID reproduces Section 4.2: with unknown latencies, probing
// discovers them in Õ(D+Δ) after which EID completes; total
// O((D+Δ)·log³ n).
func DiscoveryEID(scale Scale, seed uint64) (*Table, error) {
	fams := []family{
		{name: "clique-10", g: graph.Clique(10, 1)},
		{name: "path-8-L2", g: graph.Path(8, 2)},
	}
	if scale == ScaleFull {
		fams = append(fams,
			family{name: "mixed-grid-4x4", g: graph.RandomLatencies(graph.Grid(4, 4, 1), 1, 4, seed)},
			family{name: "ring-4x5-L3", g: graph.RingOfCliques(4, 5, 3)},
		)
	}
	t := NewTable("E-DISC  Section 4.2: latency discovery + EID (unknown latencies)",
		"graph", "n", "D", "Δ", "rounds", "(D+Δ)·log³n", "rounds/driver")
	t.Rows = make([][]string, 0, len(fams))
	type row struct {
		d      int
		rounds int
	}
	rows, err := parMap(len(fams), func(fi int) (row, error) {
		f := fams[fi]
		d := f.g.WeightedDiameter()
		res, err := core.DiscoverEID(f.g, sim.Config{Seed: seed})
		if err != nil {
			return row{}, fmt.Errorf("DISC %s: %w", f.name, err)
		}
		if !res.Completed {
			return row{}, fmt.Errorf("DISC %s: dissemination incomplete", f.name)
		}
		return row{d: d, rounds: res.Metrics.Rounds}, nil
	})
	if err != nil {
		return nil, err
	}
	for fi, r := range rows {
		f := fams[fi]
		lg := math.Log2(float64(f.g.N()))
		driver := float64(r.d+f.g.MaxDegree()) * lg * lg * lg
		t.Add(f.name, f.g.N(), r.d, f.g.MaxDegree(), r.rounds, driver,
			float64(r.rounds)/driver)
	}
	return t, nil
}
