package exp

import (
	"fmt"
	"math"

	"gossip/internal/core"
	"gossip/internal/cut"
	"gossip/internal/graph"
	"gossip/internal/sim"
	"gossip/internal/spanner"
)

// family is a named graph family instance with its analytically relevant
// parameters precomputed.
type family struct {
	name string
	g    *graph.Graph
}

// T12PushPull reproduces Theorem 12: push-pull completes in
// O((ℓ*/φ*)·log n) rounds. Across families with very different ℓ*/φ*, the
// ratio rounds / ((ℓ*/φ*)·ln n) stays bounded and the log-log slope of
// rounds vs the driver term is ≈ 1.
func T12PushPull(scale Scale, seed uint64) (*Table, error) {
	fams := []family{
		{name: "clique-64", g: graph.Clique(64, 1)},
		{name: "ring-4x8-L2", g: graph.RingOfCliques(4, 8, 2)},
		{name: "ring-8x8-L4", g: graph.RingOfCliques(8, 8, 4)},
		{name: "dumbbell-16-L8", g: graph.Dumbbell(16, 8)},
	}
	trials := 5
	if scale == ScaleFull {
		fams = append(fams,
			family{name: "ring-16x8-L8", g: graph.RingOfCliques(16, 8, 8)},
			family{name: "dumbbell-32-L16", g: graph.Dumbbell(32, 16)},
			family{name: "gnp-128-p0.06", g: graph.GNP(128, 0.06, 1, true, seed)},
		)
		trials = 10
	}
	t := NewTable("E-T12  Theorem 12: push-pull = O((ℓ*/φ*)·log n)",
		"graph", "n", "φ*", "ℓ*", "(ℓ*/φ*)ln n", "rounds", "rounds/driver")
	var xs, ys []float64
	for _, f := range fams {
		wc, err := cut.WeightedConductance(f.g, seed)
		if err != nil {
			return nil, fmt.Errorf("T12 %s conductance: %w", f.name, err)
		}
		if wc.PhiStar <= 0 {
			return nil, fmt.Errorf("T12 %s: φ* = 0", f.name)
		}
		driver := float64(wc.EllStar) / wc.PhiStar * math.Log(float64(f.g.N()))
		var rounds []float64
		for i := 0; i < trials; i++ {
			pp, err := core.PushPull(f.g, 0, core.ModePushPull, sim.Config{Seed: seed + uint64(i)})
			if err != nil {
				return nil, fmt.Errorf("T12 %s: %w", f.name, err)
			}
			rounds = append(rounds, float64(pp.Metrics.Rounds))
		}
		s := Summarize(rounds)
		t.Add(f.name, f.g.N(), wc.PhiStar, wc.EllStar, driver, s.Mean, s.Mean/driver)
		xs = append(xs, driver)
		ys = append(ys, s.Mean)
	}
	t.Note = fmt.Sprintf("rounds/driver <= 1 on every row: the O((ℓ*/φ*)·log n) bound holds "+
		"(log-log slope vs driver = %.2f; tightness of the bound is the E-T7 experiment)", LogLogSlope(xs, ys))
	return t, nil
}

// T14Spanner reproduces Lemma 13 / Theorem 14: at k = log n the Baswana–Sen
// construction yields O(n log n) edges, O(log n) out-degree, and stretch
// <= 2k−1.
func T14Spanner(scale Scale, seed uint64) (*Table, error) {
	ns := []int{32, 64, 128}
	if scale == ScaleFull {
		ns = append(ns, 256)
	}
	t := NewTable("E-T14  Lemma 13/Theorem 14: spanner size, out-degree, stretch at k=log n",
		"n", "k", "edges", "edges/(n·log n)", "max out-deg", "outdeg/log n", "stretch", "2k-1")
	for _, n := range ns {
		g := graph.GNP(n, math.Min(1, 8*math.Log(float64(n))/float64(n)), 1, true, seed)
		k := int(math.Ceil(math.Log2(float64(n))))
		sp, err := spanner.Build(g, k, n, seed)
		if err != nil {
			return nil, fmt.Errorf("T14 n=%d: %w", n, err)
		}
		lg := math.Log2(float64(n))
		t.Add(n, k, sp.Size(), float64(sp.Size())/(float64(n)*lg),
			sp.MaxOutDegree(), float64(sp.MaxOutDegree())/lg,
			spanner.Stretch(g, sp), 2*k-1)
	}
	t.Note = "edges/(n log n) and outdeg/log n bounded; stretch within 2k-1"
	return t, nil
}

// L15RRBroadcast reproduces Lemma 15 / Corollary 16: RR Broadcast over the
// oriented spanner completes all-to-all dissemination within
// kRR·Δout + kRR rounds, i.e. O(D log² n).
func L15RRBroadcast(scale Scale, seed uint64) (*Table, error) {
	fams := []family{
		{name: "clique-32", g: graph.Clique(32, 1)},
		{name: "ring-4x6-L3", g: graph.RingOfCliques(4, 6, 3)},
		{name: "grid-6x6-L2", g: graph.Grid(6, 6, 2)},
	}
	if scale == ScaleFull {
		fams = append(fams,
			family{name: "ring-8x8-L4", g: graph.RingOfCliques(8, 8, 4)},
			family{name: "grid-8x8-L2", g: graph.Grid(8, 8, 2)},
		)
	}
	t := NewTable("E-L15  Lemma 15/Corollary 16: RR Broadcast over the oriented spanner",
		"graph", "n", "D", "Δout", "completed@", "Lemma 15 bound", "D·log²n", "done/bound")
	for _, f := range fams {
		d := f.g.WeightedDiameter()
		res, err := core.RRBroadcast(f.g, d, 0, sim.Config{Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("L15 %s: %w", f.name, err)
		}
		if !res.Completed {
			return nil, fmt.Errorf("L15 %s: dissemination incomplete", f.name)
		}
		ks := int(math.Ceil(math.Log2(float64(f.g.N()))))
		kRR := (2*ks - 1) * d
		bound := kRR*res.MaxOutDegree + kRR
		lg := math.Log2(float64(f.g.N()))
		t.Add(f.name, f.g.N(), d, res.MaxOutDegree, res.RoundsToComplete, bound,
			float64(d)*lg*lg, float64(res.RoundsToComplete)/float64(bound))
	}
	t.Note = "done/bound <= 1 everywhere: completion within the Lemma 15 schedule"
	return t, nil
}

// L17EID reproduces Lemma 17: EID with known diameter solves all-to-all
// dissemination in O(D log³ n); the ratio rounds/(D·log³ n) stays bounded as
// D grows.
func L17EID(scale Scale, seed uint64) (*Table, error) {
	fams := []family{
		{name: "ring-2x6-L2", g: graph.RingOfCliques(2, 6, 2)},
		{name: "ring-4x6-L2", g: graph.RingOfCliques(4, 6, 2)},
	}
	if scale == ScaleFull {
		fams = append(fams,
			family{name: "ring-8x6-L2", g: graph.RingOfCliques(8, 6, 2)},
			family{name: "ring-12x6-L2", g: graph.RingOfCliques(12, 6, 2)},
		)
	}
	t := NewTable("E-L17  Lemma 17: EID (known D) = O(D log³ n)",
		"graph", "n", "D", "rounds", "D·log³n", "rounds/(D·log³n)")
	var xs, ys []float64
	for _, f := range fams {
		d := f.g.WeightedDiameter()
		res, err := core.EID(f.g, d, sim.Config{Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("L17 %s: %w", f.name, err)
		}
		if !res.Completed {
			return nil, fmt.Errorf("L17 %s: dissemination incomplete", f.name)
		}
		lg := math.Log2(float64(f.g.N()))
		driver := float64(d) * lg * lg * lg
		t.Add(f.name, f.g.N(), d, res.Metrics.Rounds, driver, float64(res.Metrics.Rounds)/driver)
		xs = append(xs, driver)
		ys = append(ys, float64(res.Metrics.Rounds))
	}
	t.Note = fmt.Sprintf("rounds/(D·log³n) bounded (non-increasing) — log-log slope of rounds vs the "+
		"driver D·log³n = %.2f (Lemma 17 predicts <= 1)", LogLogSlope(xs, ys))
	return t, nil
}

// T19GeneralEID reproduces Theorem 19 and Lemma 18: guess-and-double EID
// with termination detection completes in O(D log³ n) with every node
// terminating in the same round.
func T19GeneralEID(scale Scale, seed uint64) (*Table, error) {
	fams := []family{
		{name: "clique-12", g: graph.Clique(12, 1)},
		{name: "ring-3x5-L3", g: graph.RingOfCliques(3, 5, 3)},
	}
	if scale == ScaleFull {
		fams = append(fams,
			family{name: "ring-6x5-L3", g: graph.RingOfCliques(6, 5, 3)},
			family{name: "grid-5x5-L2", g: graph.Grid(5, 5, 2)},
		)
	}
	t := NewTable("E-T19  Theorem 19/Lemma 18: General EID (unknown D)",
		"graph", "n", "D", "rounds", "final estimate", "same-round termination")
	for _, f := range fams {
		d := f.g.WeightedDiameter()
		res, err := core.GeneralEID(f.g, sim.Config{Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("T19 %s: %w", f.name, err)
		}
		if !res.Completed {
			return nil, fmt.Errorf("T19 %s: dissemination incomplete", f.name)
		}
		same := true
		for _, r := range res.TerminatedAt {
			if r != res.TerminatedAt[0] {
				same = false
			}
		}
		t.Add(f.name, f.g.N(), d, res.Metrics.Rounds, res.FinalEstimate, same)
	}
	t.Note = "Lemma 18 requires same-round termination = true on every row"
	return t, nil
}

// T20Unified reproduces Theorem 20: the unified algorithm achieves
// min((D+Δ)·log³n, (ℓ*/φ*)·log n) by interleaving. The table reports both
// components' measured times, the predicted driver terms, and the winner. At
// laptop scale push-pull's constants dominate; the predicted-driver columns
// show where the asymptotic crossover lies.
func T20Unified(scale Scale, seed uint64) (*Table, error) {
	fams := []family{
		{name: "clique-24", g: graph.Clique(24, 1)},
		{name: "ring-4x6-L2", g: graph.RingOfCliques(4, 6, 2)},
	}
	if scale == ScaleFull {
		fams = append(fams,
			family{name: "dumbbell-12-L6", g: graph.Dumbbell(12, 6)},
			family{name: "grid-5x5-L2", g: graph.Grid(5, 5, 2)},
		)
	}
	t := NewTable("E-T20  Theorem 20: unified = 2·min(push-pull, spanner algorithm)",
		"graph", "n", "pp rounds", "spanner rounds", "unified rounds", "winner",
		"(ℓ*/φ*)ln n", "D·log³n")
	for _, f := range fams {
		res, err := core.Unified(f.g, 0, true, sim.Config{Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("T20 %s: %w", f.name, err)
		}
		wc, err := cut.WeightedConductance(f.g, seed)
		if err != nil {
			return nil, fmt.Errorf("T20 %s conductance: %w", f.name, err)
		}
		d := f.g.WeightedDiameter()
		lg := math.Log2(float64(f.g.N()))
		ppDriver := math.Inf(1)
		if wc.PhiStar > 0 {
			ppDriver = float64(wc.EllStar) / wc.PhiStar * math.Log(float64(f.g.N()))
		}
		t.Add(f.name, f.g.N(), res.PushPull.Metrics.Rounds, res.Spanner.Metrics.Rounds,
			res.Rounds, res.Winner, ppDriver, float64(d)*lg*lg*lg)
	}
	t.Note = "unified = 2·min of the two components (deterministic 1:1 interleaving)"
	return t, nil
}

// L24PathDiscovery reproduces Lemmas 24–26: the T(k) schedule solves
// all-to-all dissemination; Path Discovery handles unknown D in
// O(D log² n log D) without knowing n.
func L24PathDiscovery(scale Scale, seed uint64) (*Table, error) {
	fams := []family{
		{name: "clique-10", g: graph.Clique(10, 1)},
		{name: "dumbbell-5-L3", g: graph.Dumbbell(5, 3)},
	}
	if scale == ScaleFull {
		fams = append(fams,
			family{name: "ring-4x5-L2", g: graph.RingOfCliques(4, 5, 2)},
			family{name: "grid-4x4-L2", g: graph.Grid(4, 4, 2)},
		)
	}
	t := NewTable("E-L24  Lemmas 24-26: T(D) and Path Discovery",
		"graph", "n", "D", "T(D) rounds", "PathDiscovery rounds", "D·log²n·logD", "same-round term")
	for _, f := range fams {
		d := f.g.WeightedDiameter()
		ts, err := core.TSequence(f.g, d, sim.Config{Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("L24 T(D) %s: %w", f.name, err)
		}
		if !ts.Completed {
			return nil, fmt.Errorf("L24 %s: T(D) incomplete", f.name)
		}
		pd, err := core.PathDiscovery(f.g, sim.Config{Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("L24 PD %s: %w", f.name, err)
		}
		if !pd.Completed {
			return nil, fmt.Errorf("L24 %s: Path Discovery incomplete", f.name)
		}
		same := true
		for _, r := range pd.TerminatedAt {
			if r != pd.TerminatedAt[0] {
				same = false
			}
		}
		lg := math.Log2(float64(f.g.N()))
		driver := float64(d) * lg * lg * math.Max(1, math.Log2(float64(d)+1))
		t.Add(f.name, f.g.N(), d, ts.Metrics.Rounds, pd.Metrics.Rounds, driver, same)
	}
	return t, nil
}

// DiscoveryEID reproduces Section 4.2: with unknown latencies, probing
// discovers them in Õ(D+Δ) after which EID completes; total
// O((D+Δ)·log³ n).
func DiscoveryEID(scale Scale, seed uint64) (*Table, error) {
	fams := []family{
		{name: "clique-10", g: graph.Clique(10, 1)},
		{name: "path-8-L2", g: graph.Path(8, 2)},
	}
	if scale == ScaleFull {
		fams = append(fams,
			family{name: "mixed-grid-4x4", g: graph.RandomLatencies(graph.Grid(4, 4, 1), 1, 4, seed)},
			family{name: "ring-4x5-L3", g: graph.RingOfCliques(4, 5, 3)},
		)
	}
	t := NewTable("E-DISC  Section 4.2: latency discovery + EID (unknown latencies)",
		"graph", "n", "D", "Δ", "rounds", "(D+Δ)·log³n", "rounds/driver")
	for _, f := range fams {
		d := f.g.WeightedDiameter()
		res, err := core.DiscoverEID(f.g, sim.Config{Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("DISC %s: %w", f.name, err)
		}
		if !res.Completed {
			return nil, fmt.Errorf("DISC %s: dissemination incomplete", f.name)
		}
		lg := math.Log2(float64(f.g.N()))
		driver := float64(d+f.g.MaxDegree()) * lg * lg * lg
		t.Add(f.name, f.g.N(), d, f.g.MaxDegree(), res.Metrics.Rounds, driver,
			float64(res.Metrics.Rounds)/driver)
	}
	return t, nil
}
