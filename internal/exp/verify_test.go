package exp

import (
	"strings"
	"testing"
)

// TestShapesQuick runs every experiment that has a registered shape check at
// quick scale and asserts the paper-claim shape holds — the reproduction as
// a regression test.
func TestShapesQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("long-running shape checks")
	}
	for id := range shapeChecks {
		id := id
		t.Run(id, func(t *testing.T) {
			tb, err := Run(id, ScaleQuick, 1)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if err := VerifyShape(id, tb); err != nil {
				t.Errorf("%v\n%s", err, tb)
			}
		})
	}
}

func TestVerifyShapeUnknownIsNil(t *testing.T) {
	if err := VerifyShape("NOPE", NewTable("x")); err != nil {
		t.Errorf("unknown id should pass: %v", err)
	}
}

func TestCellHelpers(t *testing.T) {
	tb := NewTable("x", "alpha", "beta rounds")
	tb.Add("1.5", "oops")
	if v, err := cellFloat(tb, 0, "alpha"); err != nil || v != 1.5 {
		t.Errorf("cellFloat = %v, %v", v, err)
	}
	if _, err := cellFloat(tb, 0, "beta"); err == nil {
		t.Error("non-numeric cell should fail")
	}
	if _, err := cell(tb, 0, "gamma"); err == nil {
		t.Error("missing column should fail")
	}
	if _, err := cell(tb, 5, "alpha"); err == nil {
		t.Error("row out of range should fail")
	}
}

func TestNoteSlope(t *testing.T) {
	tb := NewTable("x")
	tb.Note = "log-log slope of adaptive rounds vs m = 1.01 (Lemma 4 predicts 1.0)"
	v, err := noteSlope(tb)
	if err != nil || v != 1.01 {
		t.Errorf("noteSlope = %v, %v", v, err)
	}
	tb.Note = "no figure here"
	if _, err := noteSlope(tb); err == nil {
		t.Error("missing slope should fail")
	}
}

func TestShapeBoundedRatioRejects(t *testing.T) {
	tb := NewTable("x", "done/bound")
	tb.Add("1.500")
	err := shapeBoundedRatio("done/bound", 1.0)(tb)
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Errorf("expected bound violation, got %v", err)
	}
}

func TestShapeAllTrueRejects(t *testing.T) {
	tb := NewTable("x", "same-round termination")
	tb.Add("false")
	if err := shapeAllTrue("same-round termination")(tb); err == nil {
		t.Error("false row should fail")
	}
}
