package exp

import (
	"fmt"
	"math"

	"gossip/internal/core"
	"gossip/internal/graph"
	"gossip/internal/guess"
	"gossip/internal/sim"
)

// L3Reduction reproduces Lemma 3 (Gossip Protocol Simulation): Alice can
// play Guessing(2m, P) by simulating a gossip algorithm on the gadget and
// submitting every activated cross edge as a guess. We run push-pull on
// G_sym(P), capture its cross-edge activations with the engine tracer,
// replay them as a scripted game, and check the lemma's inequality: the
// scripted game solves no later than the gossip run completes.
func L3Reduction(scale Scale, seed uint64) (*Table, error) {
	ms := []int{8, 16, 32}
	trials := 5
	if scale == ScaleFull {
		ms = append(ms, 64)
		trials = 10
	}
	t := NewTable("E-L3  Lemma 3: gossip execution → guessing game protocol",
		"m", "gossip rounds", "game-from-trace rounds", "game <= gossip", "direct adaptive game")
	t.Rows = make([][]string, 0, len(ms))
	type trial struct {
		gossip, game, direct float64
		holds                bool
	}
	rows, err := parMap(len(ms), func(mi int) ([]trial, error) {
		m := ms[mi]
		return parMap(trials, func(i int) (trial, error) {
			target := graph.SingletonTarget(m, seed+uint64(i))
			// Slow latency far above the algorithm's runtime, as in the
			// paper's construction (latency n): within the measured horizon
			// information crosses L→R only over the hidden fast edge, so a
			// completed run must have activated it.
			gd, err := graph.NewGadget(m, target, true, 64*m)
			if err != nil {
				return trial{}, fmt.Errorf("L3 gadget m=%d: %w", m, err)
			}
			script, rounds, err := traceToScript(gd, seed+uint64(i))
			if err != nil {
				return trial{}, fmt.Errorf("L3 trace m=%d: %w", m, err)
			}
			res, err := guess.PlayScripted(m, target, script)
			if err != nil {
				return trial{}, fmt.Errorf("L3 replay m=%d: %w", m, err)
			}
			if !res.Solved {
				return trial{}, fmt.Errorf("L3 m=%d trial %d: completed gossip run did not solve the game", m, i)
			}
			direct, err := guess.Play(m, target, guess.NewAdaptiveStrategy(seed+uint64(i)), 100*m)
			if err != nil {
				return trial{}, fmt.Errorf("L3 direct m=%d: %w", m, err)
			}
			return trial{
				gossip: float64(rounds),
				game:   float64(res.Rounds),
				direct: float64(direct.Rounds),
				holds:  res.Rounds <= rounds,
			}, nil
		})
	})
	if err != nil {
		return nil, err
	}
	for mi, ts := range rows {
		m := ms[mi]
		gossipR, gameR, directR := make([]float64, trials), make([]float64, trials), make([]float64, trials)
		holds := true
		for i, tr := range ts {
			gossipR[i], gameR[i], directR[i] = tr.gossip, tr.game, tr.direct
			holds = holds && tr.holds
		}
		t.Add(m, Summarize(gossipR).Mean, Summarize(gameR).Mean, holds, Summarize(directR).Mean)
	}
	t.Note = "every gossip execution yields a valid game protocol solving within the gossip round count (Lemma 3)"
	return t, nil
}

// traceToScript runs push-pull broadcast to completion on the gadget and
// converts its cross-edge activations into per-round guess batches.
func traceToScript(gd *graph.Gadget, seed uint64) ([][]graph.Pair, int, error) {
	var rec sim.Recorder
	res, err := core.PushPull(gd.G, gd.Left(0), core.ModePushPull,
		sim.Config{Seed: seed, Trace: rec.Tracer()})
	if err != nil {
		return nil, 0, err
	}
	rounds := res.Metrics.Rounds
	script := make([][]graph.Pair, rounds+1)
	for _, ev := range rec.Events {
		if ev.Kind != sim.TraceInitiate || ev.Round > rounds {
			continue
		}
		a, b := ev.From, ev.To
		if a >= gd.M {
			a, b = b, a
		}
		if a >= gd.M || b < gd.M {
			continue // clique edge, not a cross edge
		}
		script[ev.Round] = append(script[ev.Round], graph.Pair{A: a, B: b - gd.M})
	}
	return script[1:], rounds, nil
}

// Congestion measures the bounded in-degree extension (conclusion /
// Daum–Kuhn–Maus): limiting each node to one answered request per round
// turns the star's O(log n) push-pull broadcast into Θ(n) — hub congestion
// serializes the pulls.
func Congestion(scale Scale, seed uint64) (*Table, error) {
	ns := []int{32, 64, 128}
	trials := 5
	if scale == ScaleFull {
		ns = append(ns, 256)
		trials = 10
	}
	t := NewTable("E-CONG  bounded in-degree (1 response/round) on a star",
		"n", "unbounded rounds", "bounded rounds", "bounded/n", "unbounded/log n")
	t.Rows = make([][]string, 0, len(ns))
	type trial struct{ ub, bd float64 }
	rows, err := parMap(len(ns), func(ni int) ([]trial, error) {
		n := ns[ni]
		g := graph.Star(n, 1)
		return parMap(trials, func(i int) (trial, error) {
			a, err := core.PushPull(g, 1, core.ModePushPull, sim.Config{Seed: seed + uint64(i)})
			if err != nil {
				return trial{}, fmt.Errorf("CONG unbounded n=%d: %w", n, err)
			}
			b, err := core.PushPull(g, 1, core.ModePushPull,
				sim.Config{Seed: seed + uint64(i), MaxResponsesPerRound: 1, MaxRounds: 1000 * n})
			if err != nil {
				return trial{}, fmt.Errorf("CONG bounded n=%d: %w", n, err)
			}
			return trial{ub: float64(a.Metrics.Rounds), bd: float64(b.Metrics.Rounds)}, nil
		})
	})
	if err != nil {
		return nil, err
	}
	for ni, ts := range rows {
		n := ns[ni]
		ub, bd := make([]float64, trials), make([]float64, trials)
		for i, tr := range ts {
			ub[i], bd[i] = tr.ub, tr.bd
		}
		su, sb := Summarize(ub), Summarize(bd)
		t.Add(n, su.Mean, sb.Mean, sb.Mean/float64(n), su.Mean/math.Log2(float64(n)))
	}
	t.Note = "bounded/n roughly constant: hub capacity serializes dissemination, the restricted-model cost"
	return t, nil
}
