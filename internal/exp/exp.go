// Package exp is the experiment harness that regenerates every quantitative
// claim of the paper (see DESIGN.md §4 for the experiment index). Each
// experiment function returns a Table that cmd/experiments prints and that
// the root bench suite drives; EXPERIMENTS.md records the measured outcomes.
package exp

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Scale selects the experiment size: Quick for benchmarks and smoke runs,
// Full for the EXPERIMENTS.md tables.
type Scale int

const (
	// ScaleQuick runs a reduced parameter sweep (seconds).
	ScaleQuick Scale = iota + 1
	// ScaleFull runs the full sweep used in EXPERIMENTS.md.
	ScaleFull
)

// Table is a simple aligned text table.
type Table struct {
	Title string
	Note  string
	Cols  []string
	Rows  [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, cols ...string) *Table {
	return &Table{Title: title, Cols: cols}
}

// Add appends a row; values are formatted with %v.
func (t *Table) Add(vals ...interface{}) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = F(x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// F formats a float compactly.
func F(x float64) string {
	switch {
	case math.IsInf(x, 0) || math.IsNaN(x):
		return fmt.Sprintf("%v", x)
	case x == 0:
		return "0"
	case math.Abs(x) >= 1000:
		return fmt.Sprintf("%.0f", x)
	case math.Abs(x) >= 10:
		return fmt.Sprintf("%.1f", x)
	case math.Abs(x) >= 0.01:
		return fmt.Sprintf("%.3f", x)
	default:
		return fmt.Sprintf("%.2e", x)
	}
}

// Fprint writes the table in aligned text form.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	for i, c := range t.Cols {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
	}
	b.WriteByte('\n')
	for i := range t.Cols {
		b.WriteString(strings.Repeat("-", widths[i]))
		b.WriteString("  ")
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
			}
		}
		b.WriteByte('\n')
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// TSV writes the table as tab-separated values (header row first), the
// machine-readable companion to Fprint for downstream plotting.
func (t *Table) TSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString(strings.Join(t.Cols, "\t"))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, "\t"))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Fprint(&b); err != nil {
		return err.Error()
	}
	return b.String()
}

// Stats summarizes a sample.
type Stats struct {
	Mean, Median, Min, Max, Std float64
	N                           int
}

// Summarize computes basic statistics of xs.
func Summarize(xs []float64) Stats {
	if len(xs) == 0 {
		return Stats{}
	}
	s := Stats{N: len(xs), Min: xs[0], Max: xs[0]}
	for _, x := range xs {
		s.Mean += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean /= float64(len(xs))
	for _, x := range xs {
		s.Std += (x - s.Mean) * (x - s.Mean)
	}
	s.Std = math.Sqrt(s.Std / float64(len(xs)))
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// LogLogSlope fits the least-squares slope of log(y) against log(x) — the
// empirical scaling exponent. Points with non-positive coordinates are
// skipped.
func LogLogSlope(xs, ys []float64) float64 {
	var lx, ly []float64
	for i := range xs {
		if i < len(ys) && xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	n := float64(len(lx))
	if n < 2 {
		return math.NaN()
	}
	var sx, sy, sxx, sxy float64
	for i := range lx {
		sx += lx[i]
		sy += ly[i]
		sxx += lx[i] * lx[i]
		sxy += lx[i] * ly[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return math.NaN()
	}
	return (n*sxy - sx*sy) / den
}
