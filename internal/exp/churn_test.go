package exp

import (
	"testing"

	"gossip/internal/member"
)

func TestChurnQuantileInt(t *testing.T) {
	xs := []int{5, 1, 3, 2, 4}
	if q := quantileInt(xs, 0.5); q != 3 {
		t.Errorf("p50 = %d, want 3", q)
	}
	if q := quantileInt(xs, 0.99); q != 5 {
		t.Errorf("p99 = %d, want 5", q)
	}
	if q := quantileInt(xs, 0); q != 1 {
		t.Errorf("p0 = %d, want 1", q)
	}
	if q := quantileInt(nil, 0.5); q != 0 {
		t.Errorf("empty quantile = %d, want 0", q)
	}
}

// TestChurnTrialWithinBound runs one full churn cycle and checks the
// experiment's core claim directly: every observer detects the crash within
// the analytic suspicion-timeout bound.
func TestChurnTrialWithinBound(t *testing.T) {
	const n = 24
	tr, err := runChurnTrial(n, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	bound := member.Config{Seed: 9}.Defaulted().DetectionBound(n)
	if len(tr.detects) != n-1 {
		t.Fatalf("%d observers recorded a detection, want %d", len(tr.detects), n-1)
	}
	for _, d := range tr.detects {
		if d > bound {
			t.Errorf("observer detection latency %d exceeds bound %d", d, bound)
		}
	}
	if tr.join <= 0 || tr.readmit <= 0 || tr.msgsPerTick <= 0 {
		t.Errorf("implausible trial: %+v", tr)
	}
}

// TestChurnExperimentsQuick runs both family members end to end at quick
// scale and sanity-checks the table shapes.
func TestChurnExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-trial sweep")
	}
	for _, id := range []string{"CHURN", "CHURN-LOSS"} {
		tb, err := Run(id, ScaleQuick, 1)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tb.Rows) < 2 {
			t.Fatalf("%s produced %d rows", id, len(tb.Rows))
		}
	}
}
