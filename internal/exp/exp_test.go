package exp

import (
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "a", "bb")
	tb.Add(1, 2.5)
	tb.Add("xyz", 0.001)
	tb.Note = "n"
	s := tb.String()
	for _, want := range []string{"== demo ==", "a", "bb", "xyz", "note: n"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.Mean != 2.5 || s.Median != 2.5 || s.Min != 1 || s.Max != 4 || s.N != 4 {
		t.Errorf("Summarize = %+v", s)
	}
	odd := Summarize([]float64{3, 1, 2})
	if odd.Median != 2 {
		t.Errorf("odd median = %g", odd.Median)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("empty summarize = %+v", z)
	}
}

func TestLogLogSlope(t *testing.T) {
	// y = x² → slope 2.
	xs := []float64{1, 2, 4, 8}
	ys := []float64{1, 4, 16, 64}
	if got := LogLogSlope(xs, ys); math.Abs(got-2) > 1e-9 {
		t.Errorf("slope = %g, want 2", got)
	}
	if got := LogLogSlope([]float64{1}, []float64{1}); !math.IsNaN(got) {
		t.Errorf("degenerate slope = %g, want NaN", got)
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("NOPE", ScaleQuick, 1); err == nil {
		t.Error("unknown experiment must fail")
	}
}

// TestAllExperimentsQuick executes every registered experiment at quick
// scale: the complete harness must run green end to end.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("long-running harness check")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			tb, err := Run(id, ScaleQuick, 1)
			if err != nil {
				t.Fatalf("experiment %s: %v", id, err)
			}
			if len(tb.Rows) == 0 {
				t.Fatalf("experiment %s produced no rows", id)
			}
		})
	}
}

func TestTSV(t *testing.T) {
	tb := NewTable("demo", "a", "b")
	tb.Add(1, 2.5)
	var sb strings.Builder
	if err := tb.TSV(&sb); err != nil {
		t.Fatalf("TSV: %v", err)
	}
	want := "a\tb\n1\t2.500\n"
	if sb.String() != want {
		t.Errorf("TSV = %q, want %q", sb.String(), want)
	}
}

func TestMilestones(t *testing.T) {
	informed := []int{0, 2, 4, 6, 8, 10, 12, 14, 16, 18}
	got := milestones(informed, []float64{0.25, 0.5, 1.0})
	if got[0] != 4 || got[1] != 8 || got[2] != 18 {
		t.Errorf("milestones = %v", got)
	}
}

func TestInteriorCrashSetAvoidsBridges(t *testing.T) {
	crashes := interiorCrashSet(4, 6, 8, 3, 1)
	if len(crashes) != 8 {
		t.Fatalf("crash set size = %d, want 8", len(crashes))
	}
	for v, r := range crashes {
		if r != 3 {
			t.Errorf("node %d crash round %d, want 3", v, r)
		}
		off := v % 6
		if off == 0 || off == 5 {
			t.Errorf("node %d is a bridge endpoint; must not be crashed", v)
		}
	}
	if got := interiorCrashSet(3, 3, 5, 1, 1); len(got) != 0 {
		t.Errorf("s<4 should produce no crashes, got %v", got)
	}
}
