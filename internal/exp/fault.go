package exp

import (
	"fmt"
	"math"

	"gossip/internal/core"
	"gossip/internal/graph"
	"gossip/internal/sim"
)

// FaultTolerance measures the conclusion's robustness observation: push-pull
// tolerates crash failures (it completes among the survivors with modest
// slowdown) while the spanner-based RR Broadcast, whose fixed schedule
// routes through specific oriented edges, does not.
func FaultTolerance(scale Scale, seed uint64) (*Table, error) {
	k, s, bridge := 4, 6, 3
	fractions := []float64{0, 0.1, 0.25}
	trials := 5
	if scale == ScaleFull {
		k, s = 6, 8
		fractions = append(fractions, 0.5)
		trials = 10
	}
	g := graph.RingOfCliques(k, s, bridge)
	d := g.WeightedDiameter()
	t := NewTable(fmt.Sprintf("E-FAULT  crash robustness on ring-of-cliques (n=%d, crash round 3)", g.N()),
		"crash fraction", "crashed", "push-pull rounds", "pp completed",
		"anti-entropy completed", "RR completed", "flood completed")
	t.Rows = make([][]string, 0, len(fractions))
	type trial struct {
		ppOK, aeOK, rrOK, flOK bool
		ppRounds               float64
	}
	rows, err := parMap(len(fractions), func(fi int) ([]trial, error) {
		frac := fractions[fi]
		count := int(frac * float64(g.N()))
		return parMap(trials, func(i int) (trial, error) {
			crashes := interiorCrashSet(k, s, count, 3, seed+uint64(i))
			cfg := sim.Config{Seed: seed + uint64(i), Crashes: crashes}
			tr := trial{ppOK: true, aeOK: true, rrOK: true, flOK: true}
			pp, err := core.PushPull(g, 0, core.ModePushPull, cfg)
			if err != nil || !pp.Completed {
				tr.ppOK = false
			} else {
				tr.ppRounds = float64(pp.Metrics.Rounds)
			}
			ae, err := core.PushPullAllToAll(g, cfg)
			if err != nil || !ae.Completed {
				tr.aeOK = false
			}
			fl, err := core.Flood(g, 0, cfg)
			if err != nil || !fl.Completed {
				tr.flOK = false
			}
			rr, err := core.RRBroadcast(g, d, 0, cfg)
			if err != nil || !rr.Completed {
				tr.rrOK = false
			}
			return tr, nil
		})
	})
	if err != nil {
		return nil, err
	}
	for fi, ts := range rows {
		frac := fractions[fi]
		count := int(frac * float64(g.N()))
		var ppRounds []float64
		ppOK, aeOK, rrOK, flOK := true, true, true, true
		for _, tr := range ts {
			if tr.ppOK {
				ppRounds = append(ppRounds, tr.ppRounds)
			} else {
				ppOK = false
			}
			aeOK = aeOK && tr.aeOK
			rrOK = rrOK && tr.rrOK
			flOK = flOK && tr.flOK
		}
		mean := math.NaN()
		if len(ppRounds) > 0 {
			mean = Summarize(ppRounds).Mean
		}
		t.Add(frac, count, mean, ppOK, aeOK, rrOK, flOK)
	}
	t.Note = "push-pull completes among survivors at every crash rate; RR Broadcast loses its schedule " +
		"once load-bearing spanner nodes die — the conclusion's robustness gap, measured"
	return t, nil
}

// interiorCrashSet picks count interior clique nodes (never bridge
// endpoints, so survivors stay connected) to crash at the given round.
func interiorCrashSet(k, s, count, round int, seed uint64) map[graph.NodeID]int {
	crashes := make(map[graph.NodeID]int, count)
	if s < 4 {
		return crashes
	}
	// Interior nodes of clique c are c*s+1 .. c*s+s-2.
	idx := 0
	for len(crashes) < count {
		c := idx % k
		off := 1 + (idx/k)%(s-2)
		v := c*s + off
		if _, ok := crashes[v]; ok {
			break // exhausted interior nodes
		}
		crashes[v] = round
		idx++
	}
	_ = seed
	return crashes
}

// MessageComplexity measures the conclusion's message-size discussion:
// push-pull works with O(1)-size messages while the spanner algorithm ships
// whole rumor sets and neighborhoods, paying orders of magnitude more bytes.
func MessageComplexity(scale Scale, seed uint64) (*Table, error) {
	fams := []family{
		{name: "clique-12", g: graph.Clique(12, 1)},
		{name: "ring-3x5-L3", g: graph.RingOfCliques(3, 5, 3)},
	}
	if scale == ScaleFull {
		fams = append(fams,
			family{name: "ring-6x5-L3", g: graph.RingOfCliques(6, 5, 3)},
			family{name: "grid-5x5-L2", g: graph.Grid(5, 5, 2)},
		)
	}
	t := NewTable("E-MSG  message complexity for all-to-all dissemination",
		"graph", "n", "1-bit pp bytes", "anti-entropy bytes", "EID bytes", "EID/anti-entropy")
	t.Rows = make([][]string, 0, len(fams))
	type row struct{ pp, ae, eid int }
	rows, err := parMap(len(fams), func(fi int) (row, error) {
		f := fams[fi]
		pp, err := core.PushPull(f.g, 0, core.ModePushPull, sim.Config{Seed: seed})
		if err != nil {
			return row{}, fmt.Errorf("MSG %s push-pull: %w", f.name, err)
		}
		ae, err := core.PushPullAllToAll(f.g, sim.Config{Seed: seed})
		if err != nil {
			return row{}, fmt.Errorf("MSG %s anti-entropy: %w", f.name, err)
		}
		eid, err := core.GeneralEID(f.g, sim.Config{Seed: seed})
		if err != nil {
			return row{}, fmt.Errorf("MSG %s EID: %w", f.name, err)
		}
		return row{pp: pp.Metrics.Bytes, ae: ae.Metrics.Bytes, eid: eid.Metrics.Bytes}, nil
	})
	if err != nil {
		return nil, err
	}
	for fi, r := range rows {
		f := fams[fi]
		t.Add(f.name, f.g.N(), r.pp, r.ae, r.eid, float64(r.eid)/float64(r.ae))
	}
	t.Note = "same task (all-to-all): anti-entropy ships n-bit sets with no schedule; the spanner " +
		"algorithm additionally ships neighborhoods and status tables over long fixed schedules — " +
		"the large-message cost the conclusion flags as likely inherent"
	return t, nil
}
