package exp

import (
	"fmt"
	"math"
	"sort"

	"gossip/internal/member"
	"gossip/internal/rng"
)

// The churn experiment family measures the SWIM membership layer
// (internal/member) on the deterministic lockstep cluster: how fast a
// single-seed join converges, how quickly an injected crash is detected
// against the analytic DetectionBound, how fast a restarted node is
// re-admitted, and what steady-state message load the detector imposes.
// CHURN sweeps cluster size; CHURN-LOSS holds the size fixed and sweeps
// seeded packet loss.

// churnTrial is one full join → crash → detect → restart → re-admit cycle.
type churnTrial struct {
	join, readmit int   // ticks
	detects       []int // per-observer detection latencies
	msgsPerTick   float64
}

// runChurnTrial drives one cycle on an n-node cluster with the given seeded
// loss rate. The victim sits far from the seed so detection is not a
// seed-adjacency special case.
func runChurnTrial(n int, seed uint64, loss float64) (churnTrial, error) {
	c := member.NewCluster(n, member.Config{Seed: seed, Record: true}, nil)
	if loss > 0 {
		c.Drop = func(from, to, tick int) bool {
			return rng.Coin(loss, seed^0xc0de, uint64(from), uint64(to), uint64(tick))
		}
	}
	cfg := c.Config()
	bound := cfg.DetectionBound(n)
	budget := 8*cfg.SyncInterval + 4*bound

	// Known-not-converged is the join goal under loss too: transient
	// suspicions under sustained loss make the stricter all-Alive snapshot
	// flap, but every pair learning of each other is monotone.
	known := func() bool {
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				st, _, ok := c.Node(u).StateOf(v)
				if !ok || st == member.Dead {
					return false
				}
			}
		}
		return true
	}
	tr := churnTrial{}
	tr.join = c.RunUntil(budget, known)
	if tr.join < 0 {
		return tr, fmt.Errorf("churn: n=%d seed=%d loss=%.2f join did not converge in %d ticks", n, seed, loss, budget)
	}

	victim := n / 2
	crashTick := c.Now()
	c.Crash(victim)
	if c.RunUntil(budget, func() bool { return c.AllBelieve(victim, member.Dead) }) < 0 {
		return tr, fmt.Errorf("churn: n=%d seed=%d loss=%.2f crash of %d undetected in %d ticks", n, seed, loss, victim, budget)
	}
	tr.detects = c.DetectionTicks(victim, crashTick)

	c.Restart(victim, []int{0})
	tr.readmit = c.RunUntil(budget, func() bool { return c.AllBelieve(victim, member.Alive) })
	if tr.readmit < 0 {
		return tr, fmt.Errorf("churn: n=%d seed=%d loss=%.2f node %d not re-admitted in %d ticks", n, seed, loss, victim, budget)
	}
	tr.msgsPerTick = float64(c.Sent) / float64(c.Now())
	return tr, nil
}

// churnRow aggregates trials into one table row's numbers.
func churnRow(trials []churnTrial) (join, p50, p99, readmit, msgs float64) {
	var joins, readmits, msgsPer []float64
	var detects []int
	for _, tr := range trials {
		joins = append(joins, float64(tr.join))
		readmits = append(readmits, float64(tr.readmit))
		msgsPer = append(msgsPer, tr.msgsPerTick)
		detects = append(detects, tr.detects...)
	}
	return Summarize(joins).Mean, float64(quantileInt(detects, 0.50)),
		float64(quantileInt(detects, 0.99)), Summarize(readmits).Mean,
		Summarize(msgsPer).Mean
}

// ChurnDetection sweeps cluster size: single-seed join, crash detection
// latency against the suspicion-timeout bound, re-admission, message load.
func ChurnDetection(scale Scale, seed uint64) (*Table, error) {
	sizes := []int{16, 32}
	trials := 4
	if scale == ScaleFull {
		sizes = []int{16, 32, 64, 128}
		trials = 8
	}
	t := NewTable("E-CHURN  SWIM membership under churn (single-seed join, crash at n/2)",
		"n", "join ticks", "detect p50", "detect p99", "bound", "p99/bound", "readmit ticks", "msgs/tick")
	rows, err := parMap(len(sizes), func(si int) ([]churnTrial, error) {
		n := sizes[si]
		return parMap(trials, func(i int) (churnTrial, error) {
			return runChurnTrial(n, seed+uint64(si*trials+i), 0)
		})
	})
	if err != nil {
		return nil, err
	}
	for si, ts := range rows {
		n := sizes[si]
		bound := member.Config{Seed: 1}.Defaulted().DetectionBound(n)
		join, p50, p99, readmit, msgs := churnRow(ts)
		t.Add(n, join, p50, p99, bound, p99/float64(bound), readmit, msgs)
	}
	t.Note = "detection p99 stays under the analytic bound m·T + suspicion + " +
		"(suspicion+retransmit)·T·⌈log₂ m⌉ at every size; message load grows " +
		"linearly in n (constant per node per probe interval)"
	return t, nil
}

// ChurnUnderLoss holds the cluster size fixed and sweeps seeded packet loss:
// the false-positive pressure test. Detection latency degrades gracefully and
// re-admission still completes because alive records with higher incarnations
// override suspicion.
func ChurnUnderLoss(scale Scale, seed uint64) (*Table, error) {
	n := 32
	losses := []float64{0, 0.05, 0.10}
	trials := 3
	if scale == ScaleFull {
		losses = append(losses, 0.20)
		trials = 6
	}
	bound := member.Config{Seed: 1}.Defaulted().DetectionBound(n)
	t := NewTable(fmt.Sprintf("E-CHURN-LOSS  membership vs seeded packet loss (n=%d, bound=%d)", n, bound),
		"loss", "join ticks", "detect p50", "detect p99", "p99/bound", "readmit ticks", "msgs/tick")
	rows, err := parMap(len(losses), func(li int) ([]churnTrial, error) {
		return parMap(trials, func(i int) (churnTrial, error) {
			return runChurnTrial(n, seed+uint64(li*trials+i), losses[li])
		})
	})
	if err != nil {
		return nil, err
	}
	for li, ts := range rows {
		join, p50, p99, readmit, msgs := churnRow(ts)
		t.Add(losses[li], join, p50, p99, p99/float64(bound), readmit, msgs)
	}
	t.Note = "loss slows joins and detection but never strands a restarted node: " +
		"refutation (alive @ inc+1) wins against stale suspicion at every loss rate"
	return t, nil
}

// quantileInt is the nearest-rank q-quantile of xs (q in [0, 1]).
func quantileInt(xs []int, q float64) int {
	if len(xs) == 0 {
		return 0
	}
	s := append([]int(nil), xs...)
	sort.Ints(s)
	r := int(math.Ceil(q*float64(len(s)))) - 1
	if r < 0 {
		r = 0
	}
	if r >= len(s) {
		r = len(s) - 1
	}
	return s[r]
}
