package exp

import (
	"fmt"
	"math"

	"gossip/internal/core"
	"gossip/internal/graph"
	"gossip/internal/sim"
)

// SocialNetworks connects to the related work (Doerr, Fouz, Friedrich:
// rumors spread in Θ(log n) on power-law social networks): push-pull on
// Chung–Lu graphs stays logarithmic with unit latencies, and degrades
// gracefully — by about the latency scale, not the graph size — when edges
// carry random latencies.
func SocialNetworks(scale Scale, seed uint64) (*Table, error) {
	ns := []int{64, 128, 256}
	trials := 5
	maxLat := 8
	if scale == ScaleFull {
		ns = append(ns, 512)
		trials = 10
	}
	t := NewTable("E-SOCIAL  related work: push-pull on power-law (Chung-Lu, β=2.5) graphs",
		"n", "avg deg", "unit-latency rounds", "rounds/log n", fmt.Sprintf("latency[1..%d] rounds", maxLat), "weighted/unit")
	t.Rows = make([][]string, 0, len(ns))
	type trial struct{ unit, weighted float64 }
	type cell struct {
		ts     []trial
		avgDeg float64
	}
	rows, err := parMap(len(ns), func(ni int) (cell, error) {
		n := ns[ni]
		g1 := graph.ChungLu(n, 2.5, 10, 1, seed)
		gw := graph.RandomLatencies(g1, 1, maxLat, seed+1)
		ts, err := parMap(trials, func(i int) (trial, error) {
			a, err := core.PushPull(g1, 0, core.ModePushPull, sim.Config{Seed: seed + uint64(i)})
			if err != nil {
				return trial{}, fmt.Errorf("SOCIAL unit n=%d: %w", n, err)
			}
			b, err := core.PushPull(gw, 0, core.ModePushPull, sim.Config{Seed: seed + uint64(i)})
			if err != nil {
				return trial{}, fmt.Errorf("SOCIAL weighted n=%d: %w", n, err)
			}
			return trial{unit: float64(a.Metrics.Rounds), weighted: float64(b.Metrics.Rounds)}, nil
		})
		if err != nil {
			return cell{}, err
		}
		return cell{ts: ts, avgDeg: 2 * float64(g1.M()) / float64(n)}, nil
	})
	if err != nil {
		return nil, err
	}
	var xs, ys []float64
	for ni, c := range rows {
		n := ns[ni]
		unit, weighted := make([]float64, trials), make([]float64, trials)
		for i, tr := range c.ts {
			unit[i], weighted[i] = tr.unit, tr.weighted
		}
		su, sw := Summarize(unit), Summarize(weighted)
		t.Add(n, c.avgDeg, su.Mean, su.Mean/math.Log2(float64(n)), sw.Mean, sw.Mean/su.Mean)
		xs = append(xs, float64(n))
		ys = append(ys, su.Mean)
	}
	t.Note = fmt.Sprintf("unit-latency log-log slope of rounds vs n = %.2f (Θ(log n) predicts ≈ 0); "+
		"random latencies cost a latency-scale factor, not an n factor", LogLogSlope(xs, ys))
	return t, nil
}
