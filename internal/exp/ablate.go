package exp

import (
	"fmt"
	"math"

	"gossip/internal/core"
	"gossip/internal/graph"
	"gossip/internal/sim"
)

// AblationDelivery compares the default split round-trip delivery
// (request at ⌈ℓ/2⌉, response at ℓ) against full-RTT delivery (both at ℓ):
// one-way pipelining only changes constants, not the scaling, as the model
// discussion in DESIGN.md claims.
func AblationDelivery(scale Scale, seed uint64) (*Table, error) {
	fams := []family{
		{name: "ring-4x8-L4", g: graph.RingOfCliques(4, 8, 4)},
		{name: "dumbbell-16-L8", g: graph.Dumbbell(16, 8)},
	}
	trials := 5
	if scale == ScaleFull {
		fams = append(fams,
			family{name: "ring-8x8-L8", g: graph.RingOfCliques(8, 8, 8)},
			family{name: "path-16-L6", g: graph.Path(16, 6)},
		)
		trials = 10
	}
	t := NewTable("E-ABL-DELIVERY  split vs full-RTT delivery (push-pull broadcast)",
		"graph", "split rounds", "full-RTT rounds", "full/split")
	t.Rows = make([][]string, 0, len(fams))
	type trial struct{ split, full float64 }
	rows, err := parMap(len(fams), func(fi int) ([]trial, error) {
		f := fams[fi]
		return parMap(trials, func(i int) (trial, error) {
			a, err := core.PushPull(f.g, 0, core.ModePushPull, sim.Config{Seed: seed + uint64(i)})
			if err != nil {
				return trial{}, fmt.Errorf("ablation split %s: %w", f.name, err)
			}
			b, err := core.PushPull(f.g, 0, core.ModePushPull,
				sim.Config{Seed: seed + uint64(i), FullRTTDelivery: true})
			if err != nil {
				return trial{}, fmt.Errorf("ablation full %s: %w", f.name, err)
			}
			return trial{split: float64(a.Metrics.Rounds), full: float64(b.Metrics.Rounds)}, nil
		})
	})
	if err != nil {
		return nil, err
	}
	for fi, ts := range rows {
		f := fams[fi]
		split, full := make([]float64, trials), make([]float64, trials)
		for i, tr := range ts {
			split[i], full[i] = tr.split, tr.full
		}
		ss, sf := Summarize(split), Summarize(full)
		t.Add(f.name, ss.Mean, sf.Mean, sf.Mean/ss.Mean)
	}
	t.Note = "full/split stays within a small constant (≈0.6–1.3x; full-RTT responses carry fresher state, " +
		"which can even win on paths): the delivery model changes constants only"
	return t, nil
}

// AblationPushOnly demonstrates footnote 2: without the pull direction,
// broadcast on a star takes Ω(n) (the center must push to each leaf), versus
// O(log n) for push-pull.
func AblationPushOnly(scale Scale, seed uint64) (*Table, error) {
	ns := []int{32, 64, 128}
	trials := 5
	if scale == ScaleFull {
		ns = append(ns, 256, 512)
		trials = 10
	}
	t := NewTable("E-ABL-PUSHONLY  footnote 2: push-only needs Ω(n) on a star",
		"n", "push-pull rounds", "push-only rounds", "push-only/n", "push-pull/log n")
	t.Rows = make([][]string, 0, len(ns))
	type trial struct{ pp, po float64 }
	rows, err := parMap(len(ns), func(ni int) ([]trial, error) {
		n := ns[ni]
		g := graph.Star(n, 1)
		return parMap(trials, func(i int) (trial, error) {
			a, err := core.PushPull(g, 1, core.ModePushPull, sim.Config{Seed: seed + uint64(i)})
			if err != nil {
				return trial{}, fmt.Errorf("push-pull star n=%d: %w", n, err)
			}
			b, err := core.PushPull(g, 1, core.ModePushOnly, sim.Config{Seed: seed + uint64(i), MaxRounds: 1000 * n})
			if err != nil {
				return trial{}, fmt.Errorf("push-only star n=%d: %w", n, err)
			}
			return trial{pp: float64(a.Metrics.Rounds), po: float64(b.Metrics.Rounds)}, nil
		})
	})
	if err != nil {
		return nil, err
	}
	for ni, ts := range rows {
		n := ns[ni]
		pp, po := make([]float64, trials), make([]float64, trials)
		for i, tr := range ts {
			pp[i], po[i] = tr.pp, tr.po
		}
		sp, so := Summarize(pp), Summarize(po)
		t.Add(n, sp.Mean, so.Mean, so.Mean/float64(n), sp.Mean/math.Log2(float64(n)))
	}
	t.Note = "push-only/n roughly constant (linear law); push-pull/log n roughly constant"
	return t, nil
}

// AblationBiasedSelection compares uniform neighbor selection (the paper's
// protocol) with 1/latency-biased selection available when latencies are
// known. The bias wins inside fast neighborhoods but starves the slow cut
// edges the rumor must cross, so on low-conductance topologies it *hurts* —
// evidence that the model's uniform choice is not a weakness of the
// analysis.
func AblationBiasedSelection(scale Scale, seed uint64) (*Table, error) {
	fams := []family{
		{name: "ring-4x8-L8", g: graph.RingOfCliques(4, 8, 8)},
		{name: "dumbbell-16-L16", g: graph.Dumbbell(16, 16)},
		{name: "mixed-gnp-48", g: graph.RandomLatencies(graph.GNP(48, 0.15, 1, true, seed), 1, 8, seed)},
	}
	trials := 10
	if scale == ScaleFull {
		fams = append(fams,
			family{name: "ring-8x8-L16", g: graph.RingOfCliques(8, 8, 16)},
			family{name: "grid-8x8-mixed", g: graph.RandomLatencies(graph.Grid(8, 8, 1), 1, 8, seed)},
		)
		trials = 20
	}
	t := NewTable("E-ABL-BIAS  uniform vs 1/latency-biased neighbor selection (push-pull)",
		"graph", "uniform rounds", "biased rounds", "biased/uniform")
	t.Rows = make([][]string, 0, len(fams))
	type trial struct{ un, bi float64 }
	rows, err := parMap(len(fams), func(fi int) ([]trial, error) {
		f := fams[fi]
		return parMap(trials, func(i int) (trial, error) {
			a, err := core.PushPull(f.g, 0, core.ModePushPull, sim.Config{Seed: seed + uint64(i)})
			if err != nil {
				return trial{}, fmt.Errorf("ABL-BIAS uniform %s: %w", f.name, err)
			}
			b, err := core.PushPull(f.g, 0, core.ModeLatencyBiased, sim.Config{Seed: seed + uint64(i)})
			if err != nil {
				return trial{}, fmt.Errorf("ABL-BIAS biased %s: %w", f.name, err)
			}
			return trial{un: float64(a.Metrics.Rounds), bi: float64(b.Metrics.Rounds)}, nil
		})
	})
	if err != nil {
		return nil, err
	}
	for fi, ts := range rows {
		f := fams[fi]
		un, bi := make([]float64, trials), make([]float64, trials)
		for i, tr := range ts {
			un[i], bi[i] = tr.un, tr.bi
		}
		su, sb := Summarize(un), Summarize(bi)
		t.Add(f.name, su.Mean, sb.Mean, sb.Mean/su.Mean)
	}
	t.Note = "biasing toward fast edges starves the slow cut edges on low-conductance graphs: " +
		"the uniform choice of the paper's protocol is load-bearing"
	return t, nil
}

// AblationLocalBroadcast compares the deterministic ℓ-DTG local broadcast
// (Haeupler, the paper's choice) against the randomized alternative in the
// spirit of Censor-Hillel et al.'s Superstep algorithm: both solve ℓ-local
// broadcast; DTG's pipelined exchange sequences give it the O(ℓ·log² n)
// determinism the budgeted phases of EID need.
func AblationLocalBroadcast(scale Scale, seed uint64) (*Table, error) {
	fams := []family{
		{name: "clique-32", g: graph.Clique(32, 1)},
		{name: "star-48", g: graph.Star(48, 1)},
		{name: "ring-4x8-L4", g: graph.RingOfCliques(4, 8, 4)},
	}
	trials := 5
	if scale == ScaleFull {
		fams = append(fams,
			family{name: "clique-64", g: graph.Clique(64, 1)},
			family{name: "grid-8x8-L2", g: graph.Grid(8, 8, 2)},
		)
		trials = 10
	}
	t := NewTable("E-ABL-LB  deterministic DTG vs randomized local broadcast",
		"graph", "ℓ", "DTG rounds", "randomized rounds", "rand/DTG")
	t.Rows = make([][]string, 0, len(fams))
	type trial struct{ dt, rn float64 }
	rows, err := parMap(len(fams), func(fi int) ([]trial, error) {
		f := fams[fi]
		ell := f.g.MaxLatency()
		return parMap(trials, func(i int) (trial, error) {
			a, err := core.LocalBroadcastDTG(f.g, ell, sim.Config{Seed: seed + uint64(i)})
			if err != nil || !a.Completed {
				return trial{}, fmt.Errorf("ABL-LB DTG %s: %v", f.name, err)
			}
			b, err := core.LocalBroadcastRandom(f.g, ell, sim.Config{Seed: seed + uint64(i)})
			if err != nil || !b.Completed {
				return trial{}, fmt.Errorf("ABL-LB rand %s: %v", f.name, err)
			}
			return trial{dt: float64(a.Metrics.Rounds), rn: float64(b.Metrics.Rounds)}, nil
		})
	})
	if err != nil {
		return nil, err
	}
	for fi, ts := range rows {
		f := fams[fi]
		dt, rn := make([]float64, trials), make([]float64, trials)
		for i, tr := range ts {
			dt[i], rn[i] = tr.dt, tr.rn
		}
		sd, sr := Summarize(dt), Summarize(rn)
		t.Add(f.name, f.g.MaxLatency(), sd.Mean, sr.Mean, sr.Mean/sd.Mean)
	}
	t.Note = "both solve local broadcast; DTG's deterministic pipelining also gives the fixed budget " +
		"that keeps multi-phase protocols aligned"
	return t, nil
}

// AblationTreeVsSpanner compares the naive shortest-path-tree broadcast
// against RR Broadcast over the oriented spanner. On balanced topologies the
// tree is competitive; on high-fan-out ones (stars, hubs) its unbounded
// out-degree serializes the root — the reason EID pays for the spanner's
// O(log n) orientation.
func AblationTreeVsSpanner(scale Scale, seed uint64) (*Table, error) {
	fams := []family{
		{name: "ring-4x6-L3", g: graph.RingOfCliques(4, 6, 3)},
		{name: "star-48", g: graph.Star(48, 1)},
		{name: "grid-6x6-L2", g: graph.Grid(6, 6, 2)},
	}
	if scale == ScaleFull {
		fams = append(fams,
			family{name: "star-128", g: graph.Star(128, 1)},
			family{name: "caterpillar-8x8", g: graph.Caterpillar(8, 8, 2)},
		)
	}
	t := NewTable("E-ABL-TREE  shortest-path tree vs oriented spanner (all-to-all)",
		"graph", "n", "tree Δout", "tree schedule", "tree done@", "spanner Δout", "spanner schedule", "spanner done@")
	t.Rows = make([][]string, 0, len(fams))
	type row struct {
		tr core.TreeBroadcastResult
		sp core.RRBroadcastResult
	}
	rows, err := parMap(len(fams), func(fi int) (row, error) {
		f := fams[fi]
		d := f.g.WeightedDiameter()
		tr, err := core.TreeBroadcast(f.g, 0, sim.Config{Seed: seed})
		if err != nil {
			return row{}, fmt.Errorf("tree ablation %s: %w", f.name, err)
		}
		if !tr.Completed {
			return row{}, fmt.Errorf("tree ablation %s: incomplete", f.name)
		}
		sp, err := core.RRBroadcast(f.g, d, 0, sim.Config{Seed: seed})
		if err != nil {
			return row{}, fmt.Errorf("spanner ablation %s: %w", f.name, err)
		}
		if !sp.Completed {
			return row{}, fmt.Errorf("spanner ablation %s: incomplete", f.name)
		}
		return row{tr: tr, sp: sp}, nil
	})
	if err != nil {
		return nil, err
	}
	for fi, r := range rows {
		f := fams[fi]
		t.Add(f.name, f.g.N(), r.tr.MaxOutDegree, r.tr.Metrics.Rounds, r.tr.RoundsToComplete,
			r.sp.MaxOutDegree, r.sp.Metrics.Rounds, r.sp.RoundsToComplete)
	}
	t.Note = "the *guaranteed* schedule is kRR·Δout+kRR: tree fan-out (star root = n−1) blows it up " +
		"even when this run finished early; the spanner keeps the a-priori budget O(D·log² n)"
	return t, nil
}

// AblationSpannerK sweeps the Baswana–Sen parameter k: smaller k gives
// denser spanners with higher out-degree but lower stretch; k = log n is the
// EID default. The completion round of RR Broadcast reflects the
// k·Δout trade-off of Lemma 15.
func AblationSpannerK(scale Scale, seed uint64) (*Table, error) {
	g := graph.RingOfCliques(4, 8, 3)
	if scale == ScaleFull {
		g = graph.RingOfCliques(6, 10, 3)
	}
	d := g.WeightedDiameter()
	lgk := int(math.Ceil(math.Log2(float64(g.N()))))
	t := NewTable(fmt.Sprintf("E-ABL-SPANNERK  spanner parameter k trade-off (n=%d, D=%d)", g.N(), d),
		"k", "spanner edges", "max out-deg", "stretch", "RR completed@")
	ks := []int{2, 3, lgk}
	t.Rows = make([][]string, 0, len(ks))
	rows, err := parMap(len(ks), func(ki int) (core.RRBroadcastResult, error) {
		k := ks[ki]
		res, err := core.RRBroadcast(g, d, k, sim.Config{Seed: seed})
		if err != nil {
			return core.RRBroadcastResult{}, fmt.Errorf("spanner-k ablation k=%d: %w", k, err)
		}
		if !res.Completed {
			return core.RRBroadcastResult{}, fmt.Errorf("spanner-k ablation k=%d: incomplete", k)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	for ki, res := range rows {
		t.Add(ks[ki], res.SpannerSize, res.MaxOutDegree, res.Stretch, res.RoundsToComplete)
	}
	t.Note = "small k: denser spanner, lower stretch; k=log n: sparse with O(log n) out-degree (EID's choice)"
	return t, nil
}
