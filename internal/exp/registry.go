package exp

import (
	"fmt"
	"sort"
)

// Func is an experiment entry point.
type Func func(scale Scale, seed uint64) (*Table, error)

// Registry maps experiment IDs (DESIGN.md §4) to their implementations.
var Registry = map[string]Func{
	"L4":           L4Guessing,
	"L5":           L5GuessingRandomP,
	"T6":           T6DeltaLowerBound,
	"T7":           T7Conductance,
	"T8":           T8TradeOff,
	"L9":           L9RingConductance,
	"T12":          T12PushPull,
	"T14":          T14Spanner,
	"L15":          L15RRBroadcast,
	"L17":          L17EID,
	"T19":          T19GeneralEID,
	"T20":          T20Unified,
	"L24":          L24PathDiscovery,
	"DISC":         DiscoveryEID,
	"ABL-DELIVERY": AblationDelivery,
	"ABL-PUSHONLY": AblationPushOnly,
	"ABL-SPANNERK": AblationSpannerK,
	"FAULT":        FaultTolerance,
	"MSG":          MessageComplexity,
	"L3":           L3Reduction,
	"CONG":         Congestion,
	"CURVE":        InformedCurve,
	"ABL-TREE":     AblationTreeVsSpanner,
	"ABL-LB":       AblationLocalBroadcast,
	"ABL-BIAS":     AblationBiasedSelection,
	"LOAD":         LoadBalance,
	"CHURN":        ChurnDetection,
	"CHURN-LOSS":   ChurnUnderLoss,
	"F1":           Figure1,
	"F2":           Figure2,
	"SOCIAL":       SocialNetworks,
}

// IDs returns the registered experiment IDs in stable order.
func IDs() []string {
	ids := make([]string, 0, len(Registry))
	for id := range Registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by ID.
func Run(id string, scale Scale, seed uint64) (*Table, error) {
	fn, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q (known: %v)", id, IDs())
	}
	return fn(scale, seed)
}
