package exp

import (
	"fmt"
	"strconv"
	"strings"
)

// Shape checks encode each experiment's expected qualitative outcome — the
// "verdict" column of EXPERIMENTS.md — as executable assertions over the
// produced table, so the reproduction itself is regression-tested. They are
// deliberately loose (factor-level, not constant-level): the claims are
// asymptotic shapes.

// VerifyShape checks the table of the given experiment against its expected
// shape; experiments without a registered shape return nil.
func VerifyShape(id string, t *Table) error {
	fn, ok := shapeChecks[id]
	if !ok {
		return nil
	}
	if err := fn(t); err != nil {
		return fmt.Errorf("experiment %s shape: %w", id, err)
	}
	return nil
}

var shapeChecks = map[string]func(*Table) error{
	"L4":   shapeL4,
	"L5":   shapeL5,
	"T6":   shapeT6,
	"T7":   shapeT7,
	"T8":   shapeT8,
	"T12":  shapeBoundedRatio("rounds/driver", 1.0),
	"T14":  shapeT14,
	"L15":  shapeBoundedRatio("done/bound", 1.0),
	"L17":  shapeL17,
	"T19":  shapeAllTrue("same-round termination"),
	"L24":  shapeAllTrue("same-round term"),
	"L3":   shapeAllTrue("game <= gossip"),
	"CONG": shapeCong,
	"MSG":  shapeMsg,
	// Detection latency p99 within the analytic suspicion-timeout bound,
	// at every cluster size and (for CHURN-LOSS) every loss rate.
	"CHURN":      shapeBoundedRatio("p99/bound", 1.0),
	"CHURN-LOSS": shapeBoundedRatio("p99/bound", 1.0),
}

// cell returns the value at (row, colName).
func cell(t *Table, row int, colName string) (string, error) {
	for i, c := range t.Cols {
		if strings.Contains(c, colName) {
			if row >= len(t.Rows) || i >= len(t.Rows[row]) {
				return "", fmt.Errorf("cell (%d, %q) out of range", row, colName)
			}
			return t.Rows[row][i], nil
		}
	}
	return "", fmt.Errorf("no column containing %q (have %v)", colName, t.Cols)
}

func cellFloat(t *Table, row int, colName string) (float64, error) {
	s, err := cell(t, row, colName)
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("cell (%d, %q) = %q not numeric: %w", row, colName, s, err)
	}
	return v, nil
}

// noteSlope extracts the "slope ... = X" figure from a table note.
func noteSlope(t *Table) (float64, error) {
	idx := strings.Index(t.Note, "= ")
	if idx < 0 {
		return 0, fmt.Errorf("note has no slope figure: %q", t.Note)
	}
	rest := t.Note[idx+2:]
	if end := strings.IndexAny(rest, " ("); end > 0 {
		rest = rest[:end]
	}
	return strconv.ParseFloat(rest, 64)
}

func shapeL4(t *Table) error {
	slope, err := noteSlope(t)
	if err != nil {
		return err
	}
	if slope < 0.75 || slope > 1.35 {
		return fmt.Errorf("adaptive rounds vs m slope %.2f outside [0.75, 1.35] (Lemma 4 predicts 1)", slope)
	}
	return nil
}

func shapeL5(t *Table) error {
	// adaptive·p roughly constant: max/min <= 3 across rows.
	var vals []float64
	for r := range t.Rows {
		v, err := cellFloat(t, r, "adaptive·p")
		if err != nil {
			return err
		}
		vals = append(vals, v)
	}
	s := Summarize(vals)
	if s.Min <= 0 || s.Max/s.Min > 3 {
		return fmt.Errorf("adaptive·p varies too much: %v", vals)
	}
	// random strategy pays a growing factor over adaptive (the log m law).
	firstAd, _ := cellFloat(t, 0, "adaptive rounds")
	firstRd, _ := cellFloat(t, 0, "random rounds")
	lastAd, _ := cellFloat(t, len(t.Rows)-1, "adaptive rounds")
	lastRd, _ := cellFloat(t, len(t.Rows)-1, "random rounds")
	if lastRd/lastAd < firstRd/firstAd {
		return fmt.Errorf("random/adaptive ratio should grow as p shrinks: %.2f -> %.2f",
			firstRd/firstAd, lastRd/lastAd)
	}
	return nil
}

func shapeT6(t *Table) error {
	// D stays bounded while rounds grow: last-row push-pull rounds must
	// exceed first-row by at least the Δ growth factor / 4.
	firstD, err := cellFloat(t, 0, "Δ")
	if err != nil {
		return err
	}
	lastD, _ := cellFloat(t, len(t.Rows)-1, "Δ")
	firstR, _ := cellFloat(t, 0, "push-pull rounds")
	lastR, _ := cellFloat(t, len(t.Rows)-1, "push-pull rounds")
	if growth, want := lastR/firstR, (lastD/firstD)/4; growth < want {
		return fmt.Errorf("rounds grew only %.1fx over a %.0fx Δ range", growth, lastD/firstD)
	}
	return nil
}

func shapeT7(t *Table) error {
	// rounds·φ/ln n roughly constant: max/min <= 3.
	var vals []float64
	for r := range t.Rows {
		v, err := cellFloat(t, r, "rounds·φ/ln n")
		if err != nil {
			return err
		}
		vals = append(vals, v)
	}
	s := Summarize(vals)
	if s.Min <= 0 || s.Max/s.Min > 3 {
		return fmt.Errorf("rounds·φ/ln n varies too much: %v", vals)
	}
	return nil
}

func shapeT8(t *Table) error {
	// Rounds grow from the first to the mid rows (ℓ/φ regime), and the
	// final/penultimate growth rate flattens relative to ℓ doubling.
	n := len(t.Rows)
	if n < 4 {
		return fmt.Errorf("need >= 4 rows, have %d", n)
	}
	first, _ := cellFloat(t, 0, "push-pull rounds")
	mid, _ := cellFloat(t, n/2, "push-pull rounds")
	last, _ := cellFloat(t, n-1, "push-pull rounds")
	prev, _ := cellFloat(t, n-2, "push-pull rounds")
	if mid <= first {
		return fmt.Errorf("no growth in the ℓ/φ regime: %.1f -> %.1f", first, mid)
	}
	if last/prev > 1.9 {
		return fmt.Errorf("no flattening at large ℓ: final step grew %.2fx (ℓ doubled)", last/prev)
	}
	return nil
}

func shapeT14(t *Table) error {
	for r := range t.Rows {
		st, err := cellFloat(t, r, "stretch")
		if err != nil {
			return err
		}
		bound, err := cellFloat(t, r, "2k-1")
		if err != nil {
			return err
		}
		if st > bound {
			return fmt.Errorf("row %d: stretch %.1f exceeds 2k-1 = %.0f", r, st, bound)
		}
	}
	return nil
}

func shapeL17(t *Table) error {
	// rounds/(D·log³n) bounded: last <= 2 × first.
	first, err := cellFloat(t, 0, "rounds/(D·log³n)")
	if err != nil {
		return err
	}
	last, _ := cellFloat(t, len(t.Rows)-1, "rounds/(D·log³n)")
	if last > 2*first {
		return fmt.Errorf("rounds/driver grew %.1f -> %.1f: super-linear in D·log³n", first, last)
	}
	return nil
}

func shapeCong(t *Table) error {
	var vals []float64
	for r := range t.Rows {
		v, err := cellFloat(t, r, "bounded/n")
		if err != nil {
			return err
		}
		vals = append(vals, v)
	}
	s := Summarize(vals)
	if s.Min < 0.5 || s.Max > 2 {
		return fmt.Errorf("bounded/n outside [0.5, 2]: %v (should be Θ(n))", vals)
	}
	return nil
}

func shapeMsg(t *Table) error {
	for r := range t.Rows {
		ratio, err := cellFloat(t, r, "EID/anti-entropy")
		if err != nil {
			return err
		}
		if ratio < 10 {
			return fmt.Errorf("row %d: EID/anti-entropy byte ratio %.1f < 10", r, ratio)
		}
	}
	return nil
}

func shapeBoundedRatio(col string, bound float64) func(*Table) error {
	return func(t *Table) error {
		for r := range t.Rows {
			v, err := cellFloat(t, r, col)
			if err != nil {
				return err
			}
			if v > bound {
				return fmt.Errorf("row %d: %s = %.3f exceeds %.2f", r, col, v, bound)
			}
		}
		return nil
	}
}

func shapeAllTrue(col string) func(*Table) error {
	return func(t *Table) error {
		for r := range t.Rows {
			v, err := cell(t, r, col)
			if err != nil {
				return err
			}
			if v != "true" {
				return fmt.Errorf("row %d: %s = %q, want true", r, col, v)
			}
		}
		return nil
	}
}
