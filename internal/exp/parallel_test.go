package exp

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestSetMaxWorkers(t *testing.T) {
	orig := MaxWorkers()
	defer SetMaxWorkers(orig)
	if prev := SetMaxWorkers(3); prev != orig {
		t.Errorf("SetMaxWorkers returned %d, want previous value %d", prev, orig)
	}
	if got := MaxWorkers(); got != 3 {
		t.Errorf("MaxWorkers() = %d, want 3", got)
	}
	// Values below 1 clamp to 1 (sequential).
	SetMaxWorkers(0)
	if got := MaxWorkers(); got != 1 {
		t.Errorf("MaxWorkers() after SetMaxWorkers(0) = %d, want 1", got)
	}
}

func TestParMapOrderAndConcurrency(t *testing.T) {
	orig := SetMaxWorkers(4)
	defer SetMaxWorkers(orig)
	var calls atomic.Int64
	out, err := parMap(100, func(i int) (int, error) {
		calls.Add(1)
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 100 {
		t.Errorf("fn called %d times, want 100", calls.Load())
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d (results must stay in index order)", i, v, i*i)
		}
	}
}

// TestParMapLowestIndexError checks that a concurrent run surfaces the same
// error a sequential loop would: the one with the lowest index.
func TestParMapLowestIndexError(t *testing.T) {
	orig := SetMaxWorkers(8)
	defer SetMaxWorkers(orig)
	_, err := parMap(64, func(i int) (int, error) {
		if i%7 == 3 { // fails at 3, 10, 17, ...
			return 0, fmt.Errorf("cell %d failed", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != "cell 3 failed" {
		t.Fatalf("err = %v, want the lowest failing index (cell 3)", err)
	}
}

func TestParMapSequentialStopsAtFirstError(t *testing.T) {
	orig := SetMaxWorkers(1)
	defer SetMaxWorkers(orig)
	var calls atomic.Int64
	sentinel := errors.New("boom")
	_, err := parMap(10, func(i int) (int, error) {
		calls.Add(1)
		if i == 2 {
			return 0, sentinel
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
	if calls.Load() != 3 {
		t.Errorf("sequential mode ran %d cells after the failure, want exactly 3", calls.Load())
	}
}

// TestParMapNested exercises a sweep-over-trials shape (outer parMap calling
// inner parMap) at a worker count far below the total cell count: since each
// call bounds only its own goroutines, the nesting must not deadlock.
func TestParMapNested(t *testing.T) {
	orig := SetMaxWorkers(2)
	defer SetMaxWorkers(orig)
	out, err := parMap(8, func(i int) ([]int, error) {
		return parMap(8, func(j int) (int, error) { return i*8 + j, nil })
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, inner := range out {
		for j, v := range inner {
			if v != i*8+j {
				t.Fatalf("out[%d][%d] = %d, want %d", i, j, v, i*8+j)
			}
		}
	}
}

// TestParallelMatchesSequential is the harness's determinism contract: for
// every registered experiment, the rendered table from a parallel run must be
// byte-identical to a sequential run.
func TestParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("long-running harness check")
	}
	orig := MaxWorkers()
	defer SetMaxWorkers(orig)

	render := func(id string) string {
		tb, err := Run(id, ScaleQuick, 1)
		if err != nil {
			t.Fatalf("experiment %s: %v", id, err)
		}
		var sb strings.Builder
		if err := tb.Fprint(&sb); err != nil {
			t.Fatalf("render %s: %v", id, err)
		}
		return sb.String()
	}

	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			SetMaxWorkers(1)
			seq := render(id)
			workers := runtime.GOMAXPROCS(0)
			if workers < 2 {
				workers = 2
			}
			SetMaxWorkers(workers)
			par := render(id)
			if seq != par {
				t.Errorf("parallel output differs from sequential:\n--- sequential ---\n%s\n--- parallel (%d workers) ---\n%s",
					seq, workers, par)
			}
		})
	}
}
