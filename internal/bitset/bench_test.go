package bitset

import "testing"

func BenchmarkAdd(b *testing.B) {
	s := New(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(i % 4096)
	}
}

func BenchmarkUnionWith(b *testing.B) {
	x, y := New(4096), New(4096)
	for i := 0; i < 4096; i += 3 {
		y.Add(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.UnionWith(y)
	}
}

func BenchmarkCount(b *testing.B) {
	s := New(4096)
	for i := 0; i < 4096; i += 2 {
		s.Add(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Count()
	}
}

func BenchmarkClone(b *testing.B) {
	s := New(4096)
	s.Fill()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Clone()
	}
}

func BenchmarkForEach(b *testing.B) {
	s := New(4096)
	for i := 0; i < 4096; i += 7 {
		s.Add(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0
		s.ForEach(func(j int) bool { total += j; return true })
	}
}
