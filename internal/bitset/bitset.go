// Package bitset provides a dense, fixed-capacity bitset used to represent
// rumor sets in gossip protocols. A rumor set over n nodes is a Set of
// capacity n where bit i means "this node knows node i's rumor".
//
// The zero value of Set is an empty set of capacity 0; use New to allocate a
// set with a given capacity. All indices passed to Set methods must be in
// [0, capacity); out-of-range indices panic, as they indicate a programming
// error rather than a runtime condition.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a dense bitset with a fixed capacity chosen at allocation time.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set able to hold bits [0, n).
func New(n int) *Set {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative capacity %d", n))
	}
	return &Set{
		words: make([]uint64, (n+wordBits-1)/wordBits),
		n:     n,
	}
}

// NewWith returns a set of capacity n with the given bits set.
func NewWith(n int, idxs ...int) *Set {
	s := New(n)
	for _, i := range idxs {
		s.Add(i)
	}
	return s
}

// Cap reports the capacity (number of addressable bits).
func (s *Set) Cap() int { return s.n }

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Add sets bit i.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Remove clears bit i.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Contains reports whether bit i is set.
func (s *Set) Contains(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Full reports whether every bit in [0, Cap()) is set.
func (s *Set) Full() bool { return s.Count() == s.n }

// Empty reports whether no bit is set.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// UnionWith adds every bit of other into s. It reports whether s changed.
// The two sets must have the same capacity.
func (s *Set) UnionWith(other *Set) bool {
	s.sameCap(other)
	changed := false
	for i, w := range other.words {
		nw := s.words[i] | w
		if nw != s.words[i] {
			changed = true
			s.words[i] = nw
		}
	}
	return changed
}

// IntersectWith keeps only bits present in both sets.
func (s *Set) IntersectWith(other *Set) {
	s.sameCap(other)
	for i := range s.words {
		s.words[i] &= other.words[i]
	}
}

// DifferenceWith clears every bit of s that is set in other.
func (s *Set) DifferenceWith(other *Set) {
	s.sameCap(other)
	for i := range s.words {
		s.words[i] &^= other.words[i]
	}
}

// Equal reports whether both sets have identical capacity and contents.
func (s *Set) Equal(other *Set) bool {
	if s.n != other.n {
		return false
	}
	for i := range s.words {
		if s.words[i] != other.words[i] {
			return false
		}
	}
	return true
}

// Subset reports whether every bit of s is also set in other.
func (s *Set) Subset(other *Set) bool {
	s.sameCap(other)
	for i, w := range s.words {
		if w&^other.words[i] != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	cp := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(cp.words, s.words)
	return cp
}

// Clear removes all bits.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Fill sets all bits in [0, Cap()).
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// trim clears bits at positions >= n in the last word.
func (s *Set) trim() {
	if s.n%wordBits != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << (uint(s.n) % wordBits)) - 1
	}
}

// ForEach calls fn for every set bit in increasing order. If fn returns
// false, iteration stops early.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Slice returns the set bits in increasing order.
func (s *Set) Slice() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// SizeBytes returns the payload size of the set in bytes, used for message
// accounting in the simulator.
func (s *Set) SizeBytes() int { return len(s.words) * 8 }

// String renders the set as {i, j, ...}.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}

func (s *Set) sameCap(other *Set) {
	if s.n != other.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d != %d", s.n, other.n))
	}
}
