package bitset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(130)
	if s.Cap() != 130 {
		t.Fatalf("Cap = %d, want 130", s.Cap())
	}
	if !s.Empty() {
		t.Fatal("new set not empty")
	}
	s.Add(0)
	s.Add(64)
	s.Add(129)
	for _, i := range []int{0, 64, 129} {
		if !s.Contains(i) {
			t.Errorf("missing bit %d", i)
		}
	}
	if s.Count() != 3 {
		t.Errorf("Count = %d, want 3", s.Count())
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Error("bit 64 not removed")
	}
	if got := s.Slice(); !reflect.DeepEqual(got, []int{0, 129}) {
		t.Errorf("Slice = %v, want [0 129]", got)
	}
}

func TestFillTrimAndFull(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 100, 128} {
		s := New(n)
		s.Fill()
		if !s.Full() {
			t.Errorf("n=%d: Fill did not produce a full set (count=%d)", n, s.Count())
		}
		if s.Count() != n {
			t.Errorf("n=%d: Count after Fill = %d", n, s.Count())
		}
	}
}

func TestSetAlgebra(t *testing.T) {
	a := NewWith(10, 1, 3, 5)
	b := NewWith(10, 3, 5, 7)
	u := a.Clone()
	if changed := u.UnionWith(b); !changed {
		t.Error("union should have changed the set")
	}
	if got := u.Slice(); !reflect.DeepEqual(got, []int{1, 3, 5, 7}) {
		t.Errorf("union = %v", got)
	}
	if changed := u.UnionWith(b); changed {
		t.Error("second union should be a no-op")
	}
	i := a.Clone()
	i.IntersectWith(b)
	if got := i.Slice(); !reflect.DeepEqual(got, []int{3, 5}) {
		t.Errorf("intersection = %v", got)
	}
	d := a.Clone()
	d.DifferenceWith(b)
	if got := d.Slice(); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("difference = %v", got)
	}
	if !i.Subset(a) || !i.Subset(b) {
		t.Error("intersection must be a subset of both operands")
	}
	if a.Subset(b) {
		t.Error("a is not a subset of b")
	}
}

func TestEqualAndClone(t *testing.T) {
	a := NewWith(66, 0, 65)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.Add(1)
	if a.Equal(b) {
		t.Fatal("mutation of clone affected equality")
	}
	if a.Equal(New(65)) {
		t.Fatal("different capacities compare equal")
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := NewWith(20, 2, 4, 6, 8)
	var seen []int
	s.ForEach(func(i int) bool {
		seen = append(seen, i)
		return len(seen) < 2
	})
	if !reflect.DeepEqual(seen, []int{2, 4}) {
		t.Errorf("early stop visited %v", seen)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(8)
	for _, fn := range []func(){
		func() { s.Add(8) },
		func() { s.Add(-1) },
		func() { s.Contains(8) },
		func() { s.Remove(100) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range index")
				}
			}()
			fn()
		}()
	}
}

// randomSet builds a set of capacity n from a random value source.
func randomSet(r *rand.Rand, n int) *Set {
	s := New(n)
	for i := 0; i < n; i++ {
		if r.Intn(2) == 0 {
			s.Add(i)
		}
	}
	return s
}

func TestQuickUnionCommutative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		a, b := randomSet(r, n), randomSet(r, n)
		ab := a.Clone()
		ab.UnionWith(b)
		ba := b.Clone()
		ba.UnionWith(a)
		return ab.Equal(ba)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickUnionIdempotentAndMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		a, b := randomSet(r, n), randomSet(r, n)
		u := a.Clone()
		u.UnionWith(b)
		// Monotone: a ⊆ a∪b and b ⊆ a∪b.
		if !a.Subset(u) || !b.Subset(u) {
			return false
		}
		// Idempotent.
		v := u.Clone()
		v.UnionWith(b)
		return v.Equal(u)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCountMatchesSlice(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		s := randomSet(r, n)
		return s.Count() == len(s.Slice())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDeMorgan(t *testing.T) {
	// complement(a ∪ b) == complement(a) ∩ complement(b), using Fill/Difference.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(150)
		a, b := randomSet(r, n), randomSet(r, n)
		union := a.Clone()
		union.UnionWith(b)
		lhs := New(n)
		lhs.Fill()
		lhs.DifferenceWith(union)
		ca := New(n)
		ca.Fill()
		ca.DifferenceWith(a)
		cb := New(n)
		cb.Fill()
		cb.DifferenceWith(b)
		ca.IntersectWith(cb)
		return lhs.Equal(ca)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	if got := NewWith(10, 1, 9).String(); got != "{1, 9}" {
		t.Errorf("String = %q", got)
	}
	if got := New(4).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}
