module gossip

go 1.22
