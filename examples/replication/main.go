// Replication: geo-replicated database anti-entropy — the workload the
// paper's introduction motivates. Four datacenters hold replicas connected
// by a fast LAN (latency 1); datacenters are joined by slow WAN links
// (latency 20). Every replica starts with its own set of fresh writes and
// must reconcile with everyone (all-to-all dissemination).
//
// The example contrasts the latency-oblivious strategy (push-pull, robust
// and simple) with the latency-aware spanner algorithm (General EID) and
// relates both to the graph's weighted conductance.
package main

import (
	"fmt"
	"log"

	"gossip"
)

const (
	datacenters = 4
	replicas    = 6 // per datacenter
	lanLatency  = 1
	wanLatency  = 20
)

func main() {
	g := buildTopology()
	fmt.Printf("topology: %d replicas in %d datacenters, %d links\n", g.N(), datacenters, g.M())
	fmt.Printf("weighted diameter (worst reconciliation distance): %d\n", g.WeightedDiameter())

	wc, err := gossip.WeightedConductance(g, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("φ* = %.4f at ℓ* = %d → push-pull needs Θ((ℓ*/φ*)·log n) ≈ %.0f rounds\n",
		wc.PhiStar, wc.EllStar, float64(wc.EllStar)/wc.PhiStar)

	// Strategy 1: push-pull anti-entropy. One-to-all here; running it from
	// the "worst" replica bounds per-write propagation delay.
	pp, err := gossip.RunPushPull(g, 0, gossip.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npush-pull: a write at replica 0 reaches all replicas in %d rounds\n", pp.Metrics.Rounds)
	slowest := 0
	for _, r := range pp.InformedAt {
		if r > slowest {
			slowest = r
		}
	}
	fmt.Printf("  slowest replica converged at round %d\n", slowest)

	// Strategy 2: latency-aware reconciliation (General EID): replicas know
	// link latencies, build a low out-degree spanner, and exchange all
	// writes all-to-all with verified termination.
	eid, err := gossip.RunGeneralEID(g, gossip.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngeneral EID: full all-to-all reconciliation in %d rounds (estimate doubled up to %d)\n",
		eid.Metrics.Rounds, eid.FinalEstimate)
	fmt.Printf("  every replica terminated in the same round: %v\n", sameRound(eid.TerminatedAt))
	fmt.Printf("  bytes on the wire: push-pull=%d, EID=%d\n", pp.Metrics.Bytes, eid.Metrics.Bytes)
	fmt.Println("\ntake-away: push-pull wins on single-write latency and robustness;")
	fmt.Println("the spanner algorithm reconciles *everything* with a termination proof.")
}

// buildTopology wires datacenters×replicas nodes: LAN cliques per
// datacenter, WAN ring between datacenters (plus one chord for resilience).
func buildTopology() *gossip.Graph {
	g := gossip.NewGraph(datacenters * replicas)
	for dc := 0; dc < datacenters; dc++ {
		base := dc * replicas
		for i := 0; i < replicas; i++ {
			for j := i + 1; j < replicas; j++ {
				g.MustAddEdge(base+i, base+j, lanLatency)
			}
		}
	}
	for dc := 0; dc < datacenters; dc++ {
		next := (dc + 1) % datacenters
		// Gateway replicas 0 of each datacenter carry the WAN links.
		g.MustAddEdge(dc*replicas, next*replicas, wanLatency)
	}
	// A chord between opposite datacenters halves the WAN diameter.
	g.MustAddEdge(0, datacenters/2*replicas+1, wanLatency)
	return g
}

func sameRound(rounds []int) bool {
	for _, r := range rounds {
		if r != rounds[0] {
			return false
		}
	}
	return true
}
