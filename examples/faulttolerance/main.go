// Faulttolerance: the paper's conclusion notes that "push-pull is relatively
// robust to failures, while our other approaches are not". This example
// injects crash failures into a ring-of-cliques overlay and watches the two
// algorithm families diverge: randomized push-pull routes around the dead
// nodes, while the spanner-based RR Broadcast silently loses the oriented
// edges its fixed schedule depends on.
package main

import (
	"fmt"
	"log"

	"gossip"
)

const (
	cliques    = 4
	cliqueSize = 8
	bridgeLat  = 3
	crashRound = 3
)

func main() {
	g := gossip.RingOfCliques(cliques, cliqueSize, bridgeLat)
	d := g.WeightedDiameter()
	fmt.Printf("overlay: %d nodes, %d links, D=%d\n\n", g.N(), g.M(), d)

	fmt.Println("crashes  push-pull            RR broadcast (spanner)")
	for _, crashed := range []int{0, 2, 4, 8} {
		opts := gossip.Options{Seed: 11, Crashes: crashSet(crashed)}
		pp, err := gossip.RunPushPull(g, 0, opts)
		if err != nil {
			log.Fatal(err)
		}
		rr, err := gossip.RunRRBroadcast(g, d, 0, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %-20s %s\n", crashed,
			outcome(pp.Completed, pp.Metrics.Rounds),
			outcome(rr.Completed, rr.RoundsToComplete))
	}
	fmt.Println("\n→ push-pull keeps completing among the survivors;")
	fmt.Println("  the spanner schedule breaks as soon as load-bearing nodes die.")
}

// crashSet crashes count interior clique nodes (never bridge endpoints, so
// the survivors stay connected) at crashRound.
func crashSet(count int) map[gossip.NodeID]int {
	crashes := make(map[gossip.NodeID]int, count)
	idx := 0
	for len(crashes) < count {
		c := idx % cliques
		off := 1 + (idx/cliques)%(cliqueSize-2)
		crashes[c*cliqueSize+off] = crashRound
		idx++
	}
	return crashes
}

func outcome(completed bool, rounds int) string {
	if completed {
		return fmt.Sprintf("completed in %d", rounds)
	}
	return "FAILED to complete"
}
