// Timeline: record a push-pull broadcast on a dumbbell (two cliques joined
// by one slow bridge) and render the exchange timeline as SVG. The picture
// makes Theorem 12's mechanism visible: the run saturates the source clique
// within a few rounds, then stalls on long bridge bars until a bridge
// endpoint happens to pick the slow edge — the ℓ*/φ* term in the flesh.
package main

import (
	"fmt"
	"log"
	"os"

	"gossip"
	"gossip/internal/viz"
)

func main() {
	g := gossip.Dumbbell(8, 12) // cliques of 8, bridge latency 12
	fmt.Printf("dumbbell: %d nodes, bridge latency 12, φ*/ℓ* analysis:\n", g.N())
	wc, err := gossip.WeightedConductance(g, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  φ* = %.4f at ℓ* = %d → expected stall ≈ ℓ*/φ* = %.0f round-scale\n",
		wc.PhiStar, wc.EllStar, float64(wc.EllStar)/wc.PhiStar)

	var rec gossip.Recorder
	res, err := gossip.RunPushPull(g, 0, gossip.Options{Seed: 11, Trace: rec.Tracer()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("broadcast completed in %d rounds\n", res.Metrics.Rounds)
	half := g.N() / 2
	firstFar := -1
	for v := half; v < g.N(); v++ {
		if r := res.InformedAt[v]; firstFar < 0 || (r >= 0 && r < firstFar) {
			firstFar = r
		}
	}
	fmt.Printf("the far clique first heard the rumor at round %d (bridge crossing)\n", firstFar)

	f, err := os.Create("timeline.svg")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := viz.Timeline(f, g.N(), rec.Events, viz.TimelineOptions{
		Title: fmt.Sprintf("push-pull on a dumbbell (bridge ℓ=12): done in %d rounds", res.Metrics.Rounds),
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote timeline.svg — the long amber bars are the bridge exchanges")
}
