// Quickstart: build a small latency-weighted network, broadcast a rumor with
// classical push-pull, and inspect the result.
package main

import (
	"fmt"
	"log"

	"gossip"
)

func main() {
	// Eight cliques of eight nodes (latency-1 LAN links) joined in a ring by
	// latency-4 bridges (WAN links).
	g := gossip.RingOfCliques(8, 8, 4)
	fmt.Printf("network: %d nodes, %d edges, max degree %d\n", g.N(), g.M(), g.MaxDegree())
	fmt.Printf("weighted diameter: %d\n", g.WeightedDiameter())

	// The paper's connectivity measure: weighted conductance φ* and the
	// critical latency ℓ* (Definition 2).
	wc, err := gossip.WeightedConductance(g, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("weighted conductance φ* = %.4f at critical latency ℓ* = %d\n", wc.PhiStar, wc.EllStar)

	// Broadcast a rumor from node 0 with push-pull (Theorem 12:
	// O((ℓ*/φ*)·log n) rounds whp).
	res, err := gossip.RunPushPull(g, 0, gossip.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("push-pull informed all %d nodes in %d rounds (%d messages)\n",
		g.N(), res.Metrics.Rounds, res.Metrics.Messages())

	// When did each clique learn the rumor?
	for c := 0; c < 8; c++ {
		first := -1
		for i := 0; i < 8; i++ {
			if r := res.InformedAt[c*8+i]; first < 0 || (r >= 0 && r < first) {
				first = r
			}
		}
		fmt.Printf("  clique %d first informed at round %d\n", c, first)
	}
}
