// Lowerbound: a walkthrough of the paper's Ω(Δ) lower bound (Theorem 6).
//
// The guessing game Guessing(2m, |T|=1) hides a single "fast" pair among m²
// candidates; any player needs Ω(m) rounds to hit it (Lemma 4). The gadget
// network H embeds the game: a node can only reach its right-side neighbors
// quickly through the one hidden latency-1 cross edge, so any gossip
// algorithm pays Ω(Δ) rounds even though the weighted diameter is O(1).
package main

import (
	"fmt"
	"log"

	"gossip"
	"gossip/internal/graph"
	"gossip/internal/guess"
)

func main() {
	fmt.Println("Part 1: the guessing game (Lemma 4), mean of 20 trials")
	fmt.Println("m      adaptive-rounds   random-rounds")
	const trials = 20
	for _, m := range []int{16, 32, 64, 128} {
		var ad, rd float64
		for i := 0; i < trials; i++ {
			target := graph.SingletonTarget(m, uint64(m*1000+i))
			a, err := guess.Play(m, target, guess.NewAdaptiveStrategy(uint64(i)), 100*m)
			if err != nil {
				log.Fatal(err)
			}
			r, err := guess.Play(m, target, guess.NewRandomStrategy(uint64(i)), 100*m)
			if err != nil {
				log.Fatal(err)
			}
			ad += float64(a.Rounds) / trials
			rd += float64(r.Rounds) / trials
		}
		fmt.Printf("%-6d %-17.1f %.1f\n", m, ad, rd)
	}
	fmt.Println("→ rounds grow linearly with m: the hidden pair costs Ω(m) guesses.")

	fmt.Println("\nPart 2: the gadget network H (Theorem 6)")
	fmt.Println("Δ      n     D   push-pull-rounds")
	for _, delta := range []int{8, 16, 32, 64} {
		n := 2*delta + 8
		h, err := gossip.NewTheoremSixNetwork(n, delta, uint64(delta))
		if err != nil {
			log.Fatal(err)
		}
		res, err := gossip.RunPushPull(h.G, 0, gossip.Options{Seed: uint64(delta)})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d %-5d %-3d %d\n", delta, n, h.G.WeightedDiameter(), res.Metrics.Rounds)
	}
	fmt.Println("→ the weighted diameter stays O(1), yet broadcast time grows with Δ:")
	fmt.Println("  the algorithm must *find* the hidden fast edge — exactly the guessing game.")
}
