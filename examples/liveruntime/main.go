// Live runtime: run the same push-pull state machine twice — once in the
// deterministic lockstep simulator, once on the wall-clock runtime's sharded
// event loop with real latency delays — and compare. Then split the
// graph across two TCP-backed runtimes in this process, the shape of a real
// multi-process deployment (see cmd/gossipd).
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"gossip"
)

func main() {
	// Eight cliques of eight (fast LAN links) bridged in a ring by slow WAN
	// links — the paper's motivating topology.
	g := gossip.RingOfCliques(8, 8, 4)
	const seed = 42

	// Round simulator: lockstep, instantaneous, deterministic.
	simRes, err := gossip.RunPushPull(g, 0, gossip.Options{Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulator: informed %d nodes in %d rounds, %d messages\n",
		g.N(), simRes.Metrics.Rounds, simRes.Metrics.Messages())

	// Live runtime: nodes multiplexed onto a sharded event loop, 1ms per
	// round, latencies as real timer delays. Same seed → same per-node
	// random choices.
	liveRes, err := gossip.RunLive(g, gossip.LivePushPull(0), gossip.LiveOptions{
		Seed: seed,
		Tick: time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("live:      informed %d nodes in %d ticks, %d messages, wall %v\n",
		countDone(liveRes.Done), liveRes.Metrics.Ticks, liveRes.Metrics.Messages(),
		liveRes.Metrics.Wall.Round(time.Millisecond))

	// A two-runtime TCP cluster in one process: each runtime hosts half the
	// nodes behind its own loopback transport, exactly as two gossipd
	// processes would.
	half := g.N() / 2
	var hosted [2][]gossip.NodeID
	for u := 0; u < g.N(); u++ {
		hosted[u/half] = append(hosted[u/half], gossip.NodeID(u))
	}
	addrs := make(map[gossip.NodeID]string, g.N())
	var trs [2]*gossip.LiveTCPTransport
	for i := range trs {
		tr, err := gossip.NewLiveTCPTransport("127.0.0.1:0", hosted[i])
		if err != nil {
			log.Fatal(err)
		}
		defer tr.Close()
		trs[i] = tr
		for _, u := range hosted[i] {
			addrs[u] = tr.Addr().String()
		}
	}
	for i := range trs {
		trs[i].SetPeers(addrs)
	}

	var wg sync.WaitGroup
	var results [2]gossip.LiveResult
	for i := range trs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _ = gossip.RunLiveTransport(g, gossip.LivePushPull(0), trs[i], gossip.LiveOptions{
				Seed:   seed,
				Tick:   time.Millisecond,
				Nodes:  hosted[i],
				Linger: 2 * time.Second,
			})
		}(i)
	}
	wg.Wait()

	informed := 0
	for i := range results {
		for _, u := range hosted[i] {
			if results[i].Done[u] {
				informed++
			}
		}
	}
	fmt.Printf("tcp x2:    informed %d/%d nodes across two TCP runtimes\n", informed, g.N())
}

func countDone(done []bool) int {
	c := 0
	for _, d := range done {
		if d {
			c++
		}
	}
	return c
}
