// Sensors: a wireless sensor grid where link latency grows with physical
// distance (diagonal neighbors are slower than adjacent ones). Every sensor
// holds a reading; the network computes a global aggregate by all-to-all
// dissemination with the latency-discovery algorithm of Section 4.2 — the
// sensors do NOT know their link latencies up front.
package main

import (
	"fmt"
	"log"

	"gossip"
)

const (
	rows = 5
	cols = 5
)

func main() {
	g := buildSensorGrid()
	fmt.Printf("sensor grid: %d nodes, %d links, weighted diameter %d\n",
		g.N(), g.M(), g.WeightedDiameter())

	// Deterministic pseudo-readings keyed by sensor ID.
	readings := make([]float64, g.N())
	for i := range readings {
		readings[i] = 20 + float64((i*37)%17)/2 // 20.0 .. 28.0 °C
	}

	// All-to-all dissemination with unknown latencies: sensors probe to
	// discover link speeds, then run the spanner algorithm until the
	// termination check proves everyone holds every rumor.
	res, err := gossip.RunDiscoverEID(g, gossip.Options{Seed: 99})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Completed {
		log.Fatal("dissemination incomplete")
	}
	fmt.Printf("all-to-all dissemination completed in %d rounds (budget doubled to %d)\n",
		res.Metrics.Rounds, res.FinalEstimate)
	fmt.Printf("all sensors terminated in the same round: %v\n", sameRound(res.TerminatedAt))

	// After completion every sensor holds every reading, so each can compute
	// the same aggregate locally.
	minV, maxV, sum := readings[0], readings[0], 0.0
	for _, r := range readings {
		if r < minV {
			minV = r
		}
		if r > maxV {
			maxV = r
		}
		sum += r
	}
	fmt.Printf("every sensor now agrees: min=%.1f°C max=%.1f°C mean=%.2f°C\n",
		minV, maxV, sum/float64(len(readings)))
	fmt.Printf("cost: %d messages, %d bytes\n", res.Metrics.Messages(), res.Metrics.Bytes)
}

// buildSensorGrid wires a rows×cols grid: rectilinear neighbors at latency
// 1–2 (radio quality varies), diagonal neighbors at latency 3.
func buildSensorGrid() *gossip.Graph {
	id := func(r, c int) int { return r*cols + c }
	g := gossip.NewGraph(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				lat := 1 + (r+c)%2
				g.MustAddEdge(id(r, c), id(r, c+1), lat)
			}
			if r+1 < rows {
				lat := 1 + (r*c)%2
				g.MustAddEdge(id(r, c), id(r+1, c), lat)
			}
			if r+1 < rows && c+1 < cols {
				g.MustAddEdge(id(r, c), id(r+1, c+1), 3)
			}
		}
	}
	return g
}

func sameRound(rounds []int) bool {
	for _, r := range rounds {
		if r != rounds[0] {
			return false
		}
	}
	return true
}
