// Chaos layer: run push-pull through a deterministic fault plan — 10% drop,
// 5% duplication, latency jitter, a partition that heals, and a node that
// crashes and recovers — and watch it still complete. Then cut the dumbbell
// bridge permanently under RR Broadcast's fixed spanner schedule and watch it
// fail closed instead of hanging: the contrast the paper's conclusion draws
// between randomized gossip and deterministic schedules under faults.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"gossip"
)

func main() {
	// The paper's motivating topology: fast LAN cliques bridged by slow WAN
	// links in a ring. Partition the first clique from the rest for a window,
	// then heal; crash an interior node and bring it back with cleared state.
	g := gossip.RingOfCliques(8, 8, 4)
	var cliqueA, rest []gossip.NodeID
	for u := 0; u < g.N(); u++ {
		if u < 8 {
			cliqueA = append(cliqueA, gossip.NodeID(u))
		} else {
			rest = append(rest, gossip.NodeID(u))
		}
	}

	res, err := gossip.RunLive(g, gossip.LivePushPull(0), gossip.LiveOptions{
		Seed: 7,
		Tick: time.Millisecond,
		Faults: &gossip.LiveFaultConfig{
			Seed:        1234,
			Drop:        0.10,
			Duplicate:   0.05,
			JitterTicks: 2,
			Partitions: []gossip.LivePartition{
				{From: 5, Until: 40, Edges: gossip.LiveCutBetween(g, cliqueA, rest)},
			},
		},
		Crashes: map[gossip.NodeID]gossip.LiveCrash{12: {At: 2, RecoverAt: 30}},
	})
	if err != nil {
		log.Fatal(err)
	}
	f := res.Faults
	fmt.Printf("push-pull under chaos: completed=%v informed=%d/%d in %d ticks\n",
		res.Completed, countDone(res.Done), g.N(), res.Metrics.Ticks)
	fmt.Printf("  fault ledger: injected-drops=%d partition-drops=%d dups=%d jittered=%d (total dropped %d)\n",
		f.InjectedDrops, f.PartitionDrops, f.InjectedDups, f.Jittered, f.Dropped())
	fmt.Printf("  node 12 crashed at tick 2, recovered at 30, re-informed=%v\n", res.Done[12])
	fmt.Printf("  informed fraction over time: %s\n", sparkline(f.InformedOverTime))

	// Same fault machinery, opposite outcome: RR Broadcast commits to a fixed
	// schedule through specific spanner edges, so an unhealed cut of the
	// dumbbell bridge leaves the far side dark. The run must not hang — the
	// schedule ends, every node halts, and the runtime returns
	// ErrLiveMaxTicks: fail closed, with the loss visible in the ledger.
	d := gossip.Dumbbell(4, 2)
	var left, right []gossip.NodeID
	for u := 0; u < 4; u++ {
		left = append(left, gossip.NodeID(u))
	}
	for u := 4; u < 8; u++ {
		right = append(right, gossip.NodeID(u))
	}
	opts := gossip.LiveOptions{
		Seed:     3,
		Tick:     time.Millisecond,
		MaxTicks: 4000,
		Faults: &gossip.LiveFaultConfig{
			Seed: 3,
			Partitions: []gossip.LivePartition{
				{From: 4, Until: 0, Edges: gossip.LiveCutBetween(d, left, right)}, // never heals
			},
		},
	}
	proto, err := gossip.LiveRRBroadcast(d, 2, 0, opts)
	if err != nil {
		log.Fatal(err)
	}
	rr, err := gossip.RunLive(d, proto, opts)
	switch {
	case errors.Is(err, gossip.ErrLiveMaxTicks):
		fmt.Printf("\nRR broadcast across a cut bridge: completed=%v informed=%d/%d — failed closed at schedule end (tick %d of %d budget)\n",
			rr.Completed, countDone(rr.Done), d.N(), rr.Metrics.Ticks, opts.MaxTicks)
		fmt.Printf("  fault ledger: partition-drops=%d\n", rr.Faults.PartitionDrops)
	case err != nil:
		log.Fatal(err)
	default:
		fmt.Println("\nRR broadcast completed despite the cut bridge (unexpected)")
	}
}

func countDone(done []bool) int {
	c := 0
	for _, d := range done {
		if d {
			c++
		}
	}
	return c
}

// sparkline renders the informed-fraction trajectory as a compact bar chart.
func sparkline(xs []float64) string {
	const ramp = " ▁▂▃▄▅▆▇█"
	// Downsample to at most 40 columns so the line stays readable.
	step := 1
	if len(xs) > 40 {
		step = (len(xs) + 39) / 40
	}
	out := make([]rune, 0, 40)
	for i := 0; i < len(xs); i += step {
		v := xs[i]
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		out = append(out, []rune(ramp)[int(v*8)])
	}
	return string(out)
}
